package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestChecksumSetVerify(t *testing.T) {
	cs := NewChecksumSet(0)
	page := bytes.Repeat([]byte{0x5A}, 256)
	cs.Update(3, page)
	if cs.Pages() != 4 {
		t.Fatalf("Pages = %d, want 4", cs.Pages())
	}
	if err := cs.Verify(3, page); err != nil {
		t.Fatalf("verify clean page: %v", err)
	}
	// Pages never written verify against the zero checksum only.
	zero := make([]byte, 256)
	if err := cs.Verify(1, zero); err == nil {
		t.Fatal("unwritten page with zero checksum verified a zero page; want mismatch (crc of zeros != 0)")
	}
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	cs := NewChecksumSet(1)
	page := bytes.Repeat([]byte{0xC3}, 512)
	cs.Update(0, page)
	flipped := append([]byte(nil), page...)
	flipped[100] ^= 0x01
	err := cs.Verify(0, flipped)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: %v, want ErrCorrupt", err)
	}
	var cpe *CorruptPageError
	if !errors.As(err, &cpe) || cpe.Page != 0 {
		t.Fatalf("error detail: %v", err)
	}
}

func TestChecksumQuarantine(t *testing.T) {
	cs := NewChecksumSet(1)
	page := bytes.Repeat([]byte{7}, 64)
	cs.Update(0, page)
	bad := append([]byte(nil), page...)
	bad[0] ^= 0xFF
	if err := cs.Verify(0, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatal("corruption not detected")
	}
	if got := cs.Quarantined(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Quarantined = %v", got)
	}
	// Once quarantined, even the original (clean) content fails fast: the
	// page's integrity can no longer be trusted without an fsck.
	if err := cs.Verify(0, page); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("quarantined page verified clean content: %v", err)
	}
	// A fresh write rehabilitates the page.
	cs.Update(0, page)
	if err := cs.Verify(0, page); err != nil {
		t.Fatalf("verify after rewrite: %v", err)
	}
}

func TestChecksumSidecarRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pages")
	cs := NewChecksumSet(0)
	for i := PageID(0); i < 5; i++ {
		cs.Update(i, bytes.Repeat([]byte{byte(i + 1)}, 128))
	}
	if err := cs.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadChecksums(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pages() != cs.Pages() {
		t.Fatalf("Pages = %d, want %d", got.Pages(), cs.Pages())
	}
	for i := PageID(0); i < 5; i++ {
		if got.Sum(i) != cs.Sum(i) {
			t.Fatalf("sum %d mismatch", i)
		}
	}
}

func TestChecksumSidecarSelfCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pages")
	cs := NewChecksumSet(0)
	cs.Update(0, make([]byte, 64))
	if err := cs.Save(path); err != nil {
		t.Fatal(err)
	}
	// Corrupt the sidecar itself: the trailing self-CRC must catch it.
	sp := SumsPath(path)
	data, err := os.ReadFile(sp)
	if err != nil {
		t.Fatal(err)
	}
	data[len(sumsMagic)+2] ^= 0xFF
	if err := os.WriteFile(sp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChecksums(path); err == nil {
		t.Fatal("corrupted sidecar loaded")
	}
}

func TestComputeFileChecksums(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages")
	content := append(bytes.Repeat([]byte{1}, 128), bytes.Repeat([]byte{2}, 128)...)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	cs, err := ComputeFileChecksums(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Pages() != 2 {
		t.Fatalf("Pages = %d", cs.Pages())
	}
	if cs.Sum(0) != PageChecksum(content[:128]) || cs.Sum(1) != PageChecksum(content[128:]) {
		t.Fatal("sums do not match page content")
	}
	if _, err := ComputeFileChecksums(path, 100); err == nil {
		t.Fatal("non-multiple page size accepted")
	}
}

func TestFileDiskVerifiesChecksums(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.db")
	d, err := OpenFileDisk(path, 128, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	cs := NewChecksumSet(0)
	d.SetChecksums(cs)
	page := bytes.Repeat([]byte{0xEE}, 128)
	if err := d.Write(id, page); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := d.Read(id, got); err != nil {
		t.Fatalf("clean read: %v", err)
	}
	// Flip a bit on disk behind the checksum's back.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xEF}, int64(id)*128); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := d.Read(id, got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read of flipped page: %v, want ErrCorrupt", err)
	}
}

func TestOverlayDiskVerifiesBaseReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.db")
	page := bytes.Repeat([]byte{0x42}, 128)
	if err := os.WriteFile(path, page, 0o644); err != nil {
		t.Fatal(err)
	}
	od, err := OpenOverlay(path, 128, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer od.Close()
	cs := NewChecksumSet(0)
	cs.Update(0, page)
	od.SetChecksums(cs)
	got := make([]byte, 128)
	if err := od.Read(0, got); err != nil {
		t.Fatalf("clean base read: %v", err)
	}
	// COW write: the overlay page diverges from the base checksum but must
	// still read back fine (only base-file reads verify).
	mod := bytes.Repeat([]byte{0x43}, 128)
	if err := od.Write(0, mod); err != nil {
		t.Fatal(err)
	}
	if err := od.Read(0, got); err != nil {
		t.Fatalf("overlay read after COW: %v", err)
	}
	if !bytes.Equal(got, mod) {
		t.Fatal("overlay content lost")
	}
	// A second overlay over the same (now corrupted) base file sees the rot.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 7); err != nil {
		t.Fatal(err)
	}
	f.Close()
	od2, err := OpenOverlay(path, 128, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer od2.Close()
	od2.SetChecksums(cs2Fresh(page))
	if err := od2.Read(0, got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("base read of rotted page: %v, want ErrCorrupt", err)
	}
}

// cs2Fresh builds a one-page checksum set over the given original content
// (a fresh set so the first overlay's quarantine state doesn't leak in).
func cs2Fresh(page []byte) *ChecksumSet {
	cs := NewChecksumSet(0)
	cs.Update(0, page)
	return cs
}

func TestFaultDiskCorruption(t *testing.T) {
	base := NewMemDisk(128, CostModel{})
	fd := NewFaultDisk(base)
	id, err := fd.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0x10}, 128)
	if err := fd.Write(id, page); err != nil {
		t.Fatal(err)
	}
	fd.CorruptPages = map[PageID]Corruption{id: CorruptBitFlip}
	got := make([]byte, 128)
	if err := fd.Read(id, got); err != nil {
		t.Fatalf("corrupted read still succeeds silently (that's the point): %v", err)
	}
	if bytes.Equal(got, page) {
		t.Fatal("bit flip had no effect")
	}
	// With a checksum downstream, the silent corruption becomes loud.
	cs := NewChecksumSet(0)
	cs.Update(id, page)
	if err := cs.Verify(id, got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("checksum missed the injected flip: %v", err)
	}

	fd.CorruptPages = map[PageID]Corruption{id: CorruptTorn}
	if err := fd.Read(id, got); err != nil {
		t.Fatal(err)
	}
	half := 128 / 2
	if !bytes.Equal(got[:half], page[:half]) {
		t.Fatal("torn write damaged the first half")
	}
	for i := half; i < 128; i++ {
		if got[i] != 0 {
			t.Fatal("torn write left the second half intact")
		}
	}
}

func TestFaultDiskReadDelay(t *testing.T) {
	base := NewMemDisk(64, CostModel{})
	fd := NewFaultDisk(base)
	if _, err := fd.Alloc(); err != nil {
		t.Fatal(err)
	}
	fd.ReadDelay = 20 * time.Millisecond
	buf := make([]byte, 64)
	start := time.Now()
	if err := fd.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("read returned after %v, want >= ~20ms brownout", elapsed)
	}
}

func TestChecksumSetConcurrent(t *testing.T) {
	cs := NewChecksumSet(0)
	pages := make([][]byte, 8)
	for i := range pages {
		pages[i] = bytes.Repeat([]byte{byte(i + 1)}, 64)
		cs.Update(PageID(i), pages[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				for i := range pages {
					if err := cs.Verify(PageID(i), pages[i]); err != nil {
						t.Errorf("verify: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rep := 0; rep < 200; rep++ {
			cs.Update(PageID(rep%8), pages[rep%8])
		}
	}()
	wg.Wait()
}
