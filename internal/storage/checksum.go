package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// This file is the page-integrity layer: CRC32-C checksums over every page
// of a persisted database, kept in a sidecar file next to the page file
// (path + ".sums"). A disk armed with a ChecksumSet (FileDisk.SetChecksums,
// OverlayDisk.SetChecksums) verifies each physical page read against the
// recorded sum and fails the read with a *CorruptPageError instead of
// returning garbage — a flipped bit or torn write surfaces as a distinct,
// classifiable failure (containment.FailCorrupt) rather than a silently
// wrong join result. A page that fails verification is quarantined: every
// later read of it fails fast without touching the disk again.

// ErrCorrupt matches (errors.Is) every checksum-verification failure.
var ErrCorrupt = errors.New("storage: page corrupt")

// CorruptPageError reports one page whose content does not match its
// recorded CRC32-C checksum. It unwraps to ErrCorrupt.
type CorruptPageError struct {
	Page PageID
	Want uint32 // recorded checksum
	Got  uint32 // checksum of the bytes actually read
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("storage: page %d corrupt: checksum %08x, want %08x", e.Page, e.Got, e.Want)
}

// Unwrap lets errors.Is(err, ErrCorrupt) match.
func (e *CorruptPageError) Unwrap() error { return ErrCorrupt }

// castagnoli is the CRC32-C polynomial table — the same polynomial
// hardware-accelerated storage checksums use; crc32.Checksum over it is
// SSE4.2/ARMv8-accelerated by the standard library.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PageChecksum computes the CRC32-C checksum of one page's content.
func PageChecksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// ChecksumSet holds the per-page CRC32-C checksums of a page file plus the
// quarantine list of pages that have already failed verification. It is
// safe for concurrent use: one set may be shared by every disk and buffer
// pool reading the same database.
type ChecksumSet struct {
	mu   sync.Mutex
	sums []uint32
	bad  map[PageID]*CorruptPageError
}

// NewChecksumSet returns an empty set sized for n pages (all sums zero;
// callers fill them with Update or load them from a sidecar).
func NewChecksumSet(n int) *ChecksumSet {
	return &ChecksumSet{sums: make([]uint32, n)}
}

// Pages returns how many pages have recorded checksums.
func (cs *ChecksumSet) Pages() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.sums)
}

// Sum returns the recorded checksum of page id (0 when out of range).
func (cs *ChecksumSet) Sum(id PageID) uint32 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if id < 0 || int(id) >= len(cs.sums) {
		return 0
	}
	return cs.sums[id]
}

// Update records the checksum of page id's new content, growing the set if
// the page lies beyond it (writable engines extend their file).
func (cs *ChecksumSet) Update(id PageID, p []byte) {
	if id < 0 {
		return
	}
	sum := PageChecksum(p)
	cs.mu.Lock()
	for int(id) >= len(cs.sums) {
		cs.sums = append(cs.sums, 0)
	}
	cs.sums[id] = sum
	delete(cs.bad, id)
	cs.mu.Unlock()
}

// Verify checks page id's just-read content against the recorded checksum.
// Pages beyond the recorded range verify trivially (they were written after
// the checksums were taken, or the file grew legitimately). On mismatch the
// page is quarantined — every later Verify of the same page fails
// immediately with the same *CorruptPageError, without the caller having to
// re-read the page — and the error unwraps to ErrCorrupt.
func (cs *ChecksumSet) Verify(id PageID, p []byte) error {
	cs.mu.Lock()
	if e := cs.bad[id]; e != nil {
		cs.mu.Unlock()
		return e
	}
	if id < 0 || int(id) >= len(cs.sums) {
		cs.mu.Unlock()
		return nil
	}
	want := cs.sums[id]
	cs.mu.Unlock()

	got := PageChecksum(p)
	if got == want {
		return nil
	}
	e := &CorruptPageError{Page: id, Want: want, Got: got}
	cs.mu.Lock()
	if cs.bad == nil {
		cs.bad = map[PageID]*CorruptPageError{}
	}
	cs.bad[id] = e
	cs.mu.Unlock()
	return e
}

// Quarantined returns the pages currently quarantined, in no particular
// order (a gauge for servers and fsck).
func (cs *ChecksumSet) Quarantined() []PageID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]PageID, 0, len(cs.bad))
	for id := range cs.bad {
		out = append(out, id)
	}
	return out
}

// Sidecar format: an 8-byte magic, the page count, one uint32 CRC32-C per
// page, and a trailing CRC32-C over everything before it so a damaged
// sidecar is itself detected rather than trusted.
const sumsMagic = "PBISUM1\n"

// SumsPath returns the checksum sidecar path for a page file.
func SumsPath(path string) string { return path + ".sums" }

// Save writes the set to the sidecar for the given page file, atomically
// (tmp + rename).
func (cs *ChecksumSet) Save(path string) error {
	cs.mu.Lock()
	sums := append([]uint32(nil), cs.sums...)
	cs.mu.Unlock()

	buf := make([]byte, 0, len(sumsMagic)+8+4*len(sums)+4)
	buf = append(buf, sumsMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(sums)))
	for _, s := range sums {
		buf = binary.LittleEndian.AppendUint32(buf, s)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp := SumsPath(path) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, SumsPath(path))
}

// LoadChecksums reads the checksum sidecar of the given page file.
func LoadChecksums(path string) (*ChecksumSet, error) {
	buf, err := os.ReadFile(SumsPath(path))
	if err != nil {
		return nil, err
	}
	if len(buf) < len(sumsMagic)+8+4 || string(buf[:len(sumsMagic)]) != sumsMagic {
		return nil, fmt.Errorf("storage: %s: not a checksum sidecar", SumsPath(path))
	}
	body, trailer := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, castagnoli) != trailer {
		return nil, fmt.Errorf("storage: %s: sidecar self-checksum mismatch (sidecar damaged)", SumsPath(path))
	}
	n := binary.LittleEndian.Uint64(body[len(sumsMagic):])
	rest := body[len(sumsMagic)+8:]
	if uint64(len(rest)) != 4*n {
		return nil, fmt.Errorf("storage: %s: sidecar records %d pages but holds %d bytes of sums", SumsPath(path), n, len(rest))
	}
	sums := make([]uint32, n)
	for i := range sums {
		sums[i] = binary.LittleEndian.Uint32(rest[4*i:])
	}
	return &ChecksumSet{sums: sums}, nil
}

// ComputeFileChecksums streams the page file at path and returns the
// checksum of every full page it holds. The caller must have flushed and
// synced the file first (see containment.Engine.SaveDocs).
func ComputeFileChecksums(path string, pageSize int) (*ChecksumSet, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size()%int64(pageSize) != 0 {
		return nil, fmt.Errorf("storage: file size %d is not a multiple of page size %d", st.Size(), pageSize)
	}
	n := int(st.Size() / int64(pageSize))
	cs := NewChecksumSet(n)
	br := bufio.NewReaderSize(f, 1<<20)
	page := make([]byte, pageSize)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, page); err != nil {
			return nil, fmt.Errorf("storage: read page %d for checksum: %w", i, err)
		}
		cs.sums[i] = PageChecksum(page)
	}
	return cs, nil
}
