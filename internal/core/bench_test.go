package core

import (
	"math/rand"
	"testing"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
)

// benchJoin measures one algorithm over fixed random inputs of n elements
// per side against a pool of b frames.
func benchJoin(b *testing.B, fn joinFunc, n, frames int) {
	b.Helper()
	const h = 22
	rng := rand.New(rand.NewSource(1))
	mk := func() []pbicode.Code {
		out := make([]pbicode.Code, n)
		for i := range out {
			out[i] = pbicode.Code(rng.Uint64()%pbicode.NumNodes(h) + 1)
		}
		return out
	}
	aCodes, dCodes := mk(), mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := storage.NewMemDisk(4096, storage.CostModel{})
		pool := buffer.New(d, frames)
		ctx := &Context{Pool: pool, TreeHeight: h, Stats: &Stats{}}
		a, err := relation.FromCodes(pool, "A", aCodes)
		if err != nil {
			b.Fatal(err)
		}
		dd, err := relation.FromCodes(pool, "D", dCodes)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var sink CountSink
		if err := fn(ctx, a, dd, &sink); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		d.Close()
		b.StartTimer()
	}
}

func BenchmarkMHCJRollup100k(b *testing.B) {
	benchJoin(b, func(ctx *Context, a, d *relation.Relation, s Sink) error {
		return MHCJRollup(ctx, a, d, 0, s)
	}, 100_000, 64)
}

func BenchmarkVPJ100k(b *testing.B) { benchJoin(b, VPJ, 100_000, 64) }

func BenchmarkStackTree100k(b *testing.B) { benchJoin(b, StackTreeOnTheFly, 100_000, 64) }

func BenchmarkMPMGJN100k(b *testing.B) { benchJoin(b, MPMGJNOnTheFly, 100_000, 64) }

func BenchmarkADBPlus100k(b *testing.B) { benchJoin(b, ADBPlusOnTheFly, 100_000, 64) }

// BenchmarkSHCJ100k joins a single-height ancestor set.
func BenchmarkSHCJ100k(b *testing.B) {
	const h = 22
	rng := rand.New(rand.NewSource(2))
	const n = 100_000
	aCodes := make([]pbicode.Code, n)
	l := h - 8 - 1
	for i := range aCodes {
		aCodes[i] = pbicode.G(rng.Uint64()%(1<<uint(l)), l, h)
	}
	dCodes := make([]pbicode.Code, n)
	for i := range dCodes {
		dCodes[i] = pbicode.Code(rng.Uint64()%pbicode.NumNodes(h) + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := storage.NewMemDisk(4096, storage.CostModel{})
		pool := buffer.New(d, 64)
		ctx := &Context{Pool: pool, TreeHeight: h, Stats: &Stats{}}
		a, _ := relation.FromCodes(pool, "A", aCodes)
		dd, _ := relation.FromCodes(pool, "D", dCodes)
		b.StartTimer()
		var sink CountSink
		if err := SHCJ(ctx, a, dd, 8, &sink); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		d.Close()
		b.StartTimer()
	}
}
