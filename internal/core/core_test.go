package core

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
)

// newCtx builds a Context over a fresh in-memory disk with b pool frames
// and 256-byte pages (15 records per page), so small tests still exercise
// the out-of-memory paths.
func newCtx(t *testing.T, b, treeHeight int) *Context {
	t.Helper()
	d := storage.NewMemDisk(256, storage.CostModel{})
	t.Cleanup(func() { d.Close() })
	return &Context{
		Pool:       buffer.New(d, b),
		TreeHeight: treeHeight,
		Stats:      &Stats{},
	}
}

// randCodes draws n codes from a height-h PBiTree. When fixedHeight >= 0
// all codes are at that node height.
func randCodes(rng *rand.Rand, n, h, fixedHeight int) []pbicode.Code {
	out := make([]pbicode.Code, n)
	for i := range out {
		if fixedHeight < 0 {
			out[i] = pbicode.Code(rng.Uint64()%pbicode.NumNodes(h) + 1)
			continue
		}
		l := h - fixedHeight - 1
		alpha := rng.Uint64() % (1 << uint(l))
		out[i] = pbicode.G(alpha, l, h)
	}
	return out
}

// load creates a relation from codes.
func load(t *testing.T, ctx *Context, name string, codes []pbicode.Code) *relation.Relation {
	t.Helper()
	rel, err := relation.FromCodes(ctx.Pool, name, codes)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// oracle computes the containment join by definition.
func oracle(a, d []pbicode.Code) []Pair {
	var out []Pair
	for _, ac := range a {
		for _, dc := range d {
			if pbicode.IsAncestor(ac, dc) {
				out = append(out, Pair{A: ac, D: dc})
			}
		}
	}
	return out
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].D < ps[j].D
	})
}

func samePairs(t *testing.T, name string, got, want []Pair) {
	t.Helper()
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// joinFunc adapts each algorithm to a common shape for table-driven tests.
type joinFunc func(ctx *Context, a, d *relation.Relation, sink Sink) error

// algorithms lists every whole-input algorithm (SHCJ excluded: it needs a
// single-height ancestor set and is tested separately).
func algorithms() map[string]joinFunc {
	return map[string]joinFunc{
		"NestedLoop": NestedLoop,
		"MHCJ":       MHCJ,
		"MHCJRollup": func(ctx *Context, a, d *relation.Relation, s Sink) error { return MHCJRollup(ctx, a, d, 0, s) },
		"VPJ":        VPJ,
		"INLJN":      INLJN,
		"StackTree":  StackTreeOnTheFly,
		"MPMGJN":     MPMGJNOnTheFly,
		"ADBPlus":    ADBPlusOnTheFly,
		"StackTreeAnc": func(ctx *Context, a, d *relation.Relation, s Sink) error {
			_, err := Run(ctx, AlgStackTreeAnc, InputSpec{}, a, d, s)
			return err
		},
	}
}

func runAlgorithm(t *testing.T, name string, fn joinFunc, b, h int, aCodes, dCodes []pbicode.Code) []Pair {
	t.Helper()
	ctx := newCtx(t, b, h)
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	var sink PairSink
	if err := fn(ctx, a, d, &sink); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if ctx.Stats.Pairs != int64(len(sink.Pairs)) {
		t.Fatalf("%s: Stats.Pairs = %d, emitted %d", name, ctx.Stats.Pairs, len(sink.Pairs))
	}
	if got := ctx.Pool.PinnedFrames(); got != 0 {
		t.Fatalf("%s: leaked %d pins", name, got)
	}
	return sink.Pairs
}

func TestAllAlgorithmsAgainstOracleRandom(t *testing.T) {
	const h = 12
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		na, nd := 50+rng.Intn(800), 50+rng.Intn(800)
		aCodes := randCodes(rng, na, h, -1)
		dCodes := randCodes(rng, nd, h, -1)
		want := oracle(aCodes, dCodes)
		for _, b := range []int{4, 8, 64} {
			for name, fn := range algorithms() {
				got := runAlgorithm(t, name, fn, b, h, aCodes, dCodes)
				samePairs(t, name, got, want)
			}
		}
	}
}

func TestSHCJSingleHeight(t *testing.T) {
	const h = 14
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ancH := 3 + rng.Intn(8)
		aCodes := randCodes(rng, 300+rng.Intn(500), h, ancH)
		dCodes := randCodes(rng, 300+rng.Intn(900), h, -1)
		want := oracle(aCodes, dCodes)
		for _, b := range []int{4, 32} {
			got := runAlgorithm(t, "SHCJ", func(ctx *Context, a, d *relation.Relation, s Sink) error {
				return SHCJ(ctx, a, d, ancH, s)
			}, b, h, aCodes, dCodes)
			samePairs(t, "SHCJ", got, want)
			got = runAlgorithm(t, "SHCJAuto", SHCJAuto, b, h, aCodes, dCodes)
			samePairs(t, "SHCJAuto", got, want)
		}
	}
}

func TestSHCJRejectsBadHeight(t *testing.T) {
	ctx := newCtx(t, 4, 8)
	a := load(t, ctx, "A", nil)
	d := load(t, ctx, "D", nil)
	if err := SHCJ(ctx, a, d, 0, &CountSink{}); err == nil {
		t.Fatal("SHCJ accepted height 0")
	}
}

func TestEmptyInputs(t *testing.T) {
	const h = 10
	rng := rand.New(rand.NewSource(1))
	some := randCodes(rng, 100, h, -1)
	for name, fn := range algorithms() {
		for _, tc := range []struct {
			a, d []pbicode.Code
		}{{nil, some}, {some, nil}, {nil, nil}} {
			got := runAlgorithm(t, name, fn, 8, h, tc.a, tc.d)
			if len(got) != 0 {
				t.Fatalf("%s on empty input emitted %d pairs", name, len(got))
			}
		}
	}
}

func TestSelfJoin(t *testing.T) {
	// A == D: results are proper-ancestor pairs only, never (x, x).
	const h = 10
	rng := rand.New(rand.NewSource(2))
	codes := randCodes(rng, 400, h, -1)
	want := oracle(codes, codes)
	for name, fn := range algorithms() {
		got := runAlgorithm(t, name, fn, 8, h, codes, codes)
		samePairs(t, name, got, want)
		for _, p := range got {
			if p.A == p.D {
				t.Fatalf("%s emitted reflexive pair %v", name, p)
			}
		}
	}
}

func TestDuplicateElements(t *testing.T) {
	// Multiset semantics: duplicated elements multiply matching pairs.
	const h = 8
	root := pbicode.Root(h)
	aCodes := []pbicode.Code{root, root, root}
	dCodes := []pbicode.Code{1, 1}
	want := oracle(aCodes, dCodes) // 6 pairs
	if len(want) != 6 {
		t.Fatalf("oracle premise: %d", len(want))
	}
	for name, fn := range algorithms() {
		got := runAlgorithm(t, name, fn, 8, h, aCodes, dCodes)
		samePairs(t, name, got, want)
	}
}

func TestDeepChainDataset(t *testing.T) {
	// A worst-case nesting chain: every node on one root-to-leaf path.
	const h = 16
	var chain []pbicode.Code
	leaf := pbicode.Code(1)
	for hh := 0; hh < h; hh++ {
		chain = append(chain, pbicode.F(leaf, hh))
	}
	want := oracle(chain, chain)
	for name, fn := range algorithms() {
		got := runAlgorithm(t, name, fn, 6, h, chain, chain)
		samePairs(t, name, got, want)
	}
}

func TestSkewedDuplicateKeys(t *testing.T) {
	// Thousands of copies of the same two codes drive the Grace join into
	// its skew fallback without losing pairs.
	const h = 8
	a := make([]pbicode.Code, 0, 1200)
	d := make([]pbicode.Code, 0, 1200)
	for i := 0; i < 1200; i++ {
		a = append(a, pbicode.Root(h))
		d = append(d, pbicode.Code(1))
	}
	ctx := newCtx(t, 4, h)
	ar := load(t, ctx, "A", a)
	dr := load(t, ctx, "D", d)
	var sink CountSink
	if err := MHCJ(ctx, ar, dr, &sink); err != nil {
		t.Fatal(err)
	}
	if sink.N != 1200*1200 {
		t.Fatalf("pairs = %d, want %d", sink.N, 1200*1200)
	}
}

func TestRollupFalseHits(t *testing.T) {
	// H=5: A = {18 (h1)}, rolled to height 2 -> 20. D = {17, 19, 21}.
	// Equijoin at h=2 matches all three (F(17,2)=F(19,2)=F(21,2)=20), but
	// only 17 and 19 are real descendants of 18: one false hit.
	ctx := newCtx(t, 8, 5)
	a := load(t, ctx, "A", []pbicode.Code{18})
	d := load(t, ctx, "D", []pbicode.Code{17, 19, 21})
	var sink PairSink
	if err := MHCJRollup(ctx, a, d, 2, &sink); err != nil {
		t.Fatal(err)
	}
	samePairs(t, "rollup", sink.Pairs, []Pair{{A: 18, D: 17}, {A: 18, D: 19}})
	if ctx.Stats.FalseHits != 1 {
		t.Fatalf("FalseHits = %d, want 1", ctx.Stats.FalseHits)
	}
}

func TestRollupTargetHeightSweep(t *testing.T) {
	// Any target height gives the same result set; higher targets mean
	// fewer partitions but more false hits.
	const h = 12
	rng := rand.New(rand.NewSource(5))
	aCodes := randCodes(rng, 500, h, -1)
	dCodes := randCodes(rng, 700, h, -1)
	want := oracle(aCodes, dCodes)
	prevFalse := int64(-1)
	_ = prevFalse
	for target := 1; target < h; target++ {
		ctx := newCtx(t, 8, h)
		a := load(t, ctx, "A", aCodes)
		d := load(t, ctx, "D", dCodes)
		var sink PairSink
		if err := MHCJRollup(ctx, a, d, target, &sink); err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		samePairs(t, "rollup", sink.Pairs, want)
	}
}

func TestMHCJRollupUsesCatalogHeight(t *testing.T) {
	const h = 10
	rng := rand.New(rand.NewSource(6))
	aCodes := randCodes(rng, 300, h, -1)
	dCodes := randCodes(rng, 300, h, -1)
	maxH := 0
	for _, c := range aCodes {
		if hh := c.Height(); hh > maxH {
			maxH = hh
		}
	}
	ctx := newCtx(t, 8, h)
	ctx.MaxAncestorHeight = maxH
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	var sink PairSink
	if err := MHCJRollup(ctx, a, d, 0, &sink); err != nil {
		t.Fatal(err)
	}
	samePairs(t, "rollup-catalog", sink.Pairs, oracle(aCodes, dCodes))
}

func TestVPJReplicationCounted(t *testing.T) {
	// Force partitioning with ancestors above the cut: high nodes must be
	// replicated and counted.
	const h = 12
	rng := rand.New(rand.NewSource(7))
	var aCodes []pbicode.Code
	for i := 0; i < 600; i++ {
		// Heights 10-11 sit above the level-2 cut an 8-frame pool induces
		// (cut height h-l-1 = 9), so they must replicate.
		aCodes = append(aCodes, randCodes(rng, 1, h, 10+rng.Intn(2))[0])
	}
	dCodes := randCodes(rng, 900, h, 0)
	ctx := newCtx(t, 8, h) // small pool forces real partitioning
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	var sink PairSink
	if err := VPJ(ctx, a, d, &sink); err != nil {
		t.Fatal(err)
	}
	samePairs(t, "VPJ", sink.Pairs, oracle(aCodes, dCodes))
	if ctx.Stats.Replicated == 0 {
		t.Fatal("no replication recorded for high ancestors under a forced cut")
	}
	if ctx.Stats.Partitions == 0 {
		t.Fatal("no partitions recorded")
	}
}

// TestVPJPurgesEmptyPartitions mirrors the paper's Figure 5 scenario: data
// clustered so that some partitions have an empty side. Purged partition
// pairs yield nothing and the join stays correct.
func TestVPJPurgesEmptyPartitions(t *testing.T) {
	const h = 12
	// Ancestors only in the left half of each level, descendants
	// anywhere: right-side partitions have no ancestors.
	rng := rand.New(rand.NewSource(77))
	var aCodes, dCodes []pbicode.Code
	for i := 0; i < 900; i++ {
		l := 4 + rng.Intn(4)
		alpha := rng.Uint64() % (1 << uint(l-1))
		aCodes = append(aCodes, pbicode.G(alpha, l, h))
	}
	dCodes = append(dCodes, randCodes(rng, 900, h, 0)...)
	ctx := newCtx(t, 6, h)
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	var sink PairSink
	if err := VPJ(ctx, a, d, &sink); err != nil {
		t.Fatal(err)
	}
	samePairs(t, "VPJ-purge", sink.Pairs, oracle(aCodes, dCodes))
	if ctx.Stats.Partitions == 0 {
		t.Fatal("no partitioning happened; premise broken")
	}
}

func TestVPJRequiresTreeHeight(t *testing.T) {
	ctx := newCtx(t, 4, 0)
	a := load(t, ctx, "A", []pbicode.Code{2})
	d := load(t, ctx, "D", []pbicode.Code{1})
	if err := VPJ(ctx, a, d, &CountSink{}); err == nil {
		t.Fatal("VPJ without TreeHeight succeeded")
	}
}

func TestStackTreeOutputOrderedByDescendant(t *testing.T) {
	const h = 12
	rng := rand.New(rand.NewSource(8))
	aCodes := randCodes(rng, 400, h, -1)
	dCodes := randCodes(rng, 400, h, -1)
	ctx := newCtx(t, 8, h)
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	var sink PairSink
	if err := StackTreeOnTheFly(ctx, a, d, &sink); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sink.Pairs); i++ {
		if sink.Pairs[i].D.Start() < sink.Pairs[i-1].D.Start() {
			t.Fatalf("descendant order violated at %d", i)
		}
	}
}

func TestStackTreeAncOutputOrderedByAncestor(t *testing.T) {
	const h = 12
	rng := rand.New(rand.NewSource(9))
	aCodes := randCodes(rng, 400, h, -1)
	dCodes := randCodes(rng, 400, h, -1)
	ctx := newCtx(t, 8, h)
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	var sink PairSink
	if _, err := Run(ctx, AlgStackTreeAnc, InputSpec{}, a, d, &sink); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sink.Pairs); i++ {
		prev, cur := sink.Pairs[i-1].A, sink.Pairs[i].A
		if cur.Start() < prev.Start() {
			t.Fatalf("ancestor order violated at %d: %v after %v", i, cur, prev)
		}
	}
	samePairs(t, "anc", sink.Pairs, oracle(aCodes, dCodes))
}

func TestMPMGJNCountsRescans(t *testing.T) {
	// Nested ancestors over a shared descendant run force segment
	// re-reads.
	const h = 10
	var aCodes []pbicode.Code
	leaf := pbicode.Code(1)
	for hh := 2; hh < h; hh++ {
		aCodes = append(aCodes, pbicode.F(leaf, hh))
	}
	var dCodes []pbicode.Code
	for i := 0; i < 60; i++ {
		dCodes = append(dCodes, pbicode.Code(i*2+1)) // leaves
	}
	ctx := newCtx(t, 8, h)
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	var sink PairSink
	if err := MPMGJNOnTheFly(ctx, a, d, &sink); err != nil {
		t.Fatal(err)
	}
	samePairs(t, "mpmgjn", sink.Pairs, oracle(aCodes, dCodes))
	if ctx.Stats.Rescans == 0 {
		t.Fatal("nested ancestors caused no rescans")
	}
}

func TestADBPlusSkipsViaIndex(t *testing.T) {
	// A's elements live far left, D's far right except one matching pair:
	// the skip rules must fire.
	const h = 14
	var aCodes, dCodes []pbicode.Code
	for i := 0; i < 300; i++ {
		aCodes = append(aCodes, pbicode.Code(2*i+2)) // low left region nodes
	}
	// One big ancestor spanning the right side.
	right := pbicode.Root(h).RightChild()
	aCodes = append(aCodes, right)
	for i := 0; i < 300; i++ {
		dCodes = append(dCodes, pbicode.Code(uint64(right)+uint64(i)*2+1))
	}
	ctx := newCtx(t, 8, h)
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	var sink PairSink
	if err := ADBPlusOnTheFly(ctx, a, d, &sink); err != nil {
		t.Fatal(err)
	}
	samePairs(t, "adb", sink.Pairs, oracle(aCodes, dCodes))
	if ctx.Stats.IndexProbes == 0 {
		t.Fatal("no skip seeks recorded")
	}
}

func TestChooseImplementsTable1(t *testing.T) {
	ctx := newCtx(t, 4, 10)
	rng := rand.New(rand.NewSource(10))
	big := load(t, ctx, "big", randCodes(rng, 2000, 10, -1))
	small := load(t, ctx, "small", randCodes(rng, 5, 10, -1))
	cases := []struct {
		spec InputSpec
		a, d *relation.Relation
		want Algorithm
	}{
		{InputSpec{IndexedA: true, IndexedD: true}, big, big, AlgINLJN},
		{InputSpec{SortedA: true, SortedD: true}, big, big, AlgStackTree},
		{InputSpec{SortedA: true, SortedD: true, IndexedA: true, IndexedD: true}, big, big, AlgADBPlus},
		{InputSpec{SingleHeightA: true}, big, big, AlgSHCJ},
		{InputSpec{}, big, big, AlgVPJ},
		{InputSpec{}, big, small, AlgMHCJRollup},
		{InputSpec{SortedA: true}, big, big, AlgVPJ}, // one-sided sort is no sort
	}
	for i, tc := range cases {
		if got := Choose(ctx, tc.spec, tc.a, tc.d); got != tc.want {
			t.Errorf("case %d: Choose = %v, want %v", i, got, tc.want)
		}
	}
}

func TestRunAutoMatchesOracle(t *testing.T) {
	const h = 10
	rng := rand.New(rand.NewSource(11))
	aCodes := randCodes(rng, 600, h, -1)
	dCodes := randCodes(rng, 600, h, -1)
	want := oracle(aCodes, dCodes)
	for _, spec := range []InputSpec{
		{},
		{SortedA: true, SortedD: true}, // claims sorted: Run must sort on the fly anyway? No — spec says inputs ARE sorted.
		{IndexedA: true, IndexedD: true},
	} {
		ctx := newCtx(t, 6, h)
		aIn, dIn := aCodes, dCodes
		if spec.SortedA && spec.SortedD {
			aIn = append([]pbicode.Code(nil), aCodes...)
			dIn = append([]pbicode.Code(nil), dCodes...)
			sort.Slice(aIn, func(i, j int) bool {
				return docLessCodes(aIn[i], aIn[j])
			})
			sort.Slice(dIn, func(i, j int) bool {
				return docLessCodes(dIn[i], dIn[j])
			})
		}
		a := load(t, ctx, "A", aIn)
		d := load(t, ctx, "D", dIn)
		var sink PairSink
		alg, err := Run(ctx, AlgAuto, spec, a, d, &sink)
		if err != nil {
			t.Fatalf("%+v (%v): %v", spec, alg, err)
		}
		samePairs(t, alg.String(), sink.Pairs, want)
	}
}

func docLessCodes(x, y pbicode.Code) bool {
	return docLess(relation.Rec{Code: x}, relation.Rec{Code: y})
}

func TestRunUnknownAlgorithm(t *testing.T) {
	ctx := newCtx(t, 4, 8)
	a := load(t, ctx, "A", nil)
	d := load(t, ctx, "D", nil)
	if _, err := Run(ctx, Algorithm(99), InputSpec{}, a, d, &CountSink{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	for alg, want := range map[Algorithm]string{
		AlgSHCJ: "SHCJ", AlgMHCJRollup: "MHCJ+Rollup", AlgVPJ: "VPJ",
		AlgADBPlus: "ADB+", Algorithm(99): "Algorithm(99)",
	} {
		if got := alg.String(); got != want {
			t.Errorf("String(%d) = %q", int(alg), got)
		}
	}
}

func TestHeightHistogram(t *testing.T) {
	ctx := newCtx(t, 4, 6)
	rel := load(t, ctx, "R", []pbicode.Code{1, 3, 2, 6, 4, 32})
	hist, err := HeightHistogram(rel)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int64{0: 2, 1: 2, 2: 1, 5: 1}
	for h, n := range want {
		if hist[h] != n {
			t.Errorf("hist[%d] = %d, want %d", h, hist[h], n)
		}
	}
	if maxHeight(hist) != 5 {
		t.Errorf("maxHeight = %d", maxHeight(hist))
	}
	if maxHeight(map[int]int64{}) != -1 {
		t.Error("maxHeight(empty) != -1")
	}
}

func TestRelationSink(t *testing.T) {
	const h = 8
	rng := rand.New(rand.NewSource(12))
	aCodes := randCodes(rng, 200, h, -1)
	dCodes := randCodes(rng, 200, h, -1)
	ctx := newCtx(t, 8, h)
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	out := relation.New(ctx.Pool, "out")
	if err := MHCJRollup(ctx, a, d, 0, &RelationSink{Out: out}); err != nil {
		t.Fatal(err)
	}
	recs, err := out.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var got []Pair
	for _, r := range recs {
		got = append(got, Pair{A: pbicode.Code(r.Aux), D: r.Code})
	}
	samePairs(t, "relation-sink", got, oracle(aCodes, dCodes))
}
