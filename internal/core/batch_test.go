package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/pbicode"
)

// loadFmt creates a relation from codes in the requested page format.
// load always builds fixed-width pages; the batch equivalence matrix
// needs both layouts.
func loadFmt(t *testing.T, ctx *Context, name string, codes []pbicode.Code, compress bool) *relation.Relation {
	t.Helper()
	rel := relation.New(ctx.Pool, name)
	rel.SetCompress(compress)
	app := rel.NewAppender()
	for i, c := range codes {
		if err := app.Append(relation.Rec{Code: c, Aux: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	return rel
}

// regionJoin adapts the native region path to joinFunc shape: convert
// both inputs (inheriting their page format), run the original
// stack-tree over stored regions, and decode emissions back to element
// codes so results compare against the PBiTree-coded algorithms.
func regionJoin(ctx *Context, a, d *relation.Relation, sink Sink) error {
	ra, err := ToRegionRelation(ctx, a, "RA")
	if err != nil {
		return err
	}
	defer ra.Free() //nolint:errcheck // cleanup
	rd, err := ToRegionRelation(ctx, d, "RD")
	if err != nil {
		return err
	}
	defer rd.Free() //nolint:errcheck // cleanup
	return StackTreeRegionOnTheFly(ctx, ra, rd, sinkFunc(func(ar, dr relation.Rec) error {
		return sink.Emit(
			relation.Rec{Code: pbicode.FromRegion(pbicode.Region{Start: uint64(ar.Code), End: ar.Aux})},
			relation.Rec{Code: pbicode.FromRegion(pbicode.Region{Start: uint64(dr.Code), End: dr.Aux})},
		)
	}))
}

// batchCase is one algorithm in the batch equivalence matrix. aFixed
// pins the ancestor side to a single node height when >= 0 (SHCJ's
// required input shape); -1 draws multi-height codes.
type batchCase struct {
	name   string
	fn     joinFunc
	aFixed int
}

// batchCases lists every join whose execution changes under the batch
// flag: slab equijoins and hash partitioning (MHCJ, rollup, SHCJ),
// VPJ's subtree routing, the region conversion, and the sort-backed
// baseline whose inputs flow through extsort (which must preserve the
// compressed page format across runs and merges).
func batchCases() []batchCase {
	return []batchCase{
		{"MHCJ", MHCJ, -1},
		{"MHCJRollup", func(ctx *Context, a, d *relation.Relation, s Sink) error { return MHCJRollup(ctx, a, d, 0, s) }, -1},
		{"VPJ", VPJ, -1},
		{"SHCJ", SHCJAuto, 5},
		{"Region", regionJoin, -1},
		{"StackTree", StackTreeOnTheFly, -1},
	}
}

// runBatchMode evaluates fn over fresh relations in the given page
// format, batch mode, and parallel degree, returning the emitted pairs.
func runBatchMode(t *testing.T, label string, fn joinFunc, b, h, degree int, noBatch, compress bool, aCodes, dCodes []pbicode.Code) []Pair {
	t.Helper()
	ctx := newCtx(t, b, h)
	ctx.Parallel = degree
	ctx.NoBatch = noBatch
	a := loadFmt(t, ctx, "A", aCodes, compress)
	d := loadFmt(t, ctx, "D", dCodes, compress)
	var sink PairSink
	if err := fn(ctx, a, d, &sink); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if ctx.Stats.Pairs != int64(len(sink.Pairs)) {
		t.Fatalf("%s: Stats.Pairs = %d, emitted %d", label, ctx.Stats.Pairs, len(sink.Pairs))
	}
	if got := ctx.Pool.PinnedFrames(); got != 0 {
		t.Fatalf("%s: leaked %d pins", label, got)
	}
	return sink.Pairs
}

// TestBatchMatchesSerialRandom is the core batch equivalence property:
// for random inputs in both page formats, the slab path (the default)
// emits exactly the record-at-a-time result set, which in turn matches
// the oracle. b=4 forces the grace/block equijoin paths (memory budget
// of ~30 records); b=64 keeps the in-memory hash builds.
func TestBatchMatchesSerialRandom(t *testing.T) {
	const h = 12
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		na, nd := 300+rng.Intn(400), 300+rng.Intn(500)
		dCodes := randCodes(rng, nd, h, -1)
		for _, tc := range batchCases() {
			aCodes := randCodes(rng, na, h, tc.aFixed)
			want := oracle(aCodes, dCodes)
			for _, compress := range []bool{false, true} {
				for _, b := range []int{4, 64} {
					label := fmt.Sprintf("%s(b=%d compress=%v)", tc.name, b, compress)
					serial := runBatchMode(t, label+"/serial", tc.fn, b, h, 0, true, compress, aCodes, dCodes)
					batch := runBatchMode(t, label+"/batch", tc.fn, b, h, 0, false, compress, aCodes, dCodes)
					samePairs(t, label+"/serial-vs-oracle", serial, want)
					samePairs(t, label+"/batch-vs-serial", batch, serial)
				}
			}
		}
	}
}

// TestBatchMatchesSerialParallel crosses the batch path with the
// parallel fan-out at degrees 1, 2, and 8 in both page formats: worker
// contexts must inherit the batch flag and temp partitions the workers
// scan must carry the input's format. The baseline is the serial
// record-at-a-time run, so a bug in either axis shows up.
func TestBatchMatchesSerialParallel(t *testing.T) {
	const h = 12
	for seed := int64(0); seed < 2; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		na, nd := 500+rng.Intn(400), 500+rng.Intn(500)
		dCodes := randCodes(rng, nd, h, -1)
		for _, tc := range batchCases() {
			aCodes := randCodes(rng, na, h, tc.aFixed)
			for _, compress := range []bool{false, true} {
				want := runBatchMode(t, tc.name+"/serial", tc.fn, 24, h, 0, true, compress, aCodes, dCodes)
				for _, degree := range []int{1, 2, 8} {
					label := fmt.Sprintf("%s(parallel=%d compress=%v)", tc.name, degree, compress)
					got := runBatchMode(t, label, tc.fn, 24, h, degree, false, compress, aCodes, dCodes)
					samePairs(t, label, got, want)
				}
			}
		}
	}
}
