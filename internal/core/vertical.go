package core

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/pbicode"
)

// This file implements the vertical partitioning join of section 3.3
// (Algorithms 5 and 6): the tree is cut at a level l into k = 2^l subtrees;
// every element belongs to the partitions of the level-l nodes it is an
// ancestor or descendant of. Ancestor-set elements above the cut are
// replicated across their subtree's partition range; descendant-set
// elements above the cut go only to the leftmost partition of their range,
// which keeps the per-partition results disjoint (any ancestor of such an
// element spans a superset range and is therefore present in that leftmost
// partition). Partition pairs with an empty side are purged; pairs too
// large for the memory joins are repartitioned recursively at a deeper
// level.

// VPJ evaluates the vertical-partitioning containment join (Algorithm 5).
// ctx.TreeHeight must be the height of the PBiTree the codes come from.
func VPJ(ctx *Context, a, d *relation.Relation, sink Sink) error {
	if ctx.TreeHeight <= 0 {
		return fmt.Errorf("core: VPJ requires ctx.TreeHeight")
	}
	return vpj(ctx, a, d, ctx.Wrap(sink), 1, 0)
}

// vpj is the recursive body; minLevel forces each recursion round to cut
// strictly deeper than its parent.
func vpj(ctx *Context, a, d *relation.Relation, sink Sink, minLevel, depth int) error {
	b := ctx.b()
	h := ctx.TreeHeight
	minPages := a.NumPages()
	if p := d.NumPages(); p < minPages {
		minPages = p
	}
	if minPages == 0 {
		return nil
	}
	// Cases (a)/(b) of section 3.3: one side fits in memory — the
	// I/O-optimal ‖A‖+‖D‖ joins apply directly.
	if minPages <= int64(b-2) {
		return memoryContainmentJoin(ctx, a, d, sink)
	}
	lsp := ctx.Trace.StartDetail("vpj-level", fmt.Sprintf("depth=%d", depth))
	defer ctx.Trace.End(lsp)
	// Choose the cut level: k0 partitions of roughly the buffer size each
	// (Algorithm 5 line 1). The cut counts levels below the *common
	// ancestor of the data*, not below the root: documents embed
	// lopsidedly into the PBiTree (most elements share one subtree), and
	// cutting relative to the LCA keeps partitions balanced where
	// root-relative levels would put everything into one partition and
	// recurse needlessly.
	spanA, okA := a.Span()
	spanD, okD := d.Span()
	if !okA || !okD {
		return nil
	}
	lo, hi := spanA.Start, spanA.End
	if spanD.Start < lo {
		lo = spanD.Start
	}
	if spanD.End > hi {
		hi = spanD.End
	}
	anchor := pbicode.LCA(pbicode.Code(lo), pbicode.Code(hi))
	if ctx.VPJRootCut {
		// Ablation A8: the paper's literal root-relative cut levels.
		anchor = pbicode.Root(h)
	}
	base := anchor.Level(h)

	k0 := (minPages + int64(b-1)) / int64(b)
	need := 1
	for int64(1)<<uint(need) < k0 {
		need++
	}
	// One extra level of slack: non-uniform data (high-selectivity
	// clusters) otherwise lands partitions just above the memory bound
	// and forces a recursion pass over most of the data. Extra
	// partitions are nearly free (they only add appender frames).
	need++
	l := base + need
	if l < minLevel {
		l = minLevel
	}
	maxSplit := 1
	for (1 << uint(maxSplit+1)) <= b-1 {
		maxSplit++
	}
	maxL := base + maxSplit
	if maxL > h-1 {
		maxL = h - 1
	}
	if l > maxL {
		l = maxL
	}
	if l <= base || l < minLevel || depth >= 24 {
		// Cannot cut deeper (degenerate tree region or recursion limit):
		// fall back to the rollup join, whose Grace hashing handles any
		// size within budget.
		return mhcjRollup(ctx, a, d, 0, sink)
	}
	k := 1 << uint(l-base)
	// offset is the leftmost level-l position index under the LCA.
	offset, _ := anchor.SubtreeRange(l, h)
	if depth+1 > ctx.stats().MaxRecursion {
		ctx.stats().MaxRecursion = depth + 1
	}

	psp := ctx.Trace.StartDetail("vpartition", fmt.Sprintf("l=%d k=%d depth=%d", l, k, depth))
	aParts, err := vPartition(ctx, a, l, offset, k, true)
	if err != nil {
		ctx.Trace.End(psp)
		return err
	}
	dParts, err := vPartition(ctx, d, l, offset, k, false)
	ctx.Trace.End(psp)
	if err != nil {
		freeAll(aParts)
		return err
	}
	defer freeAll(aParts)
	defer freeAll(dParts)
	// The k subtree joins are independent — partitions cover disjoint
	// code regions, and replicated above-cut ancestors were copied into
	// every partition they reach — so with a parallel degree the live
	// pairs fan out across worker pools. Each worker re-decides
	// memory-fit against its own (smaller) budget; a pair that recurses
	// does so serially inside its worker. The deferred frees above cover
	// every partition regardless of outcome.
	if ctx.Parallel > 1 {
		live := make([]int, 0, k)
		for i := 0; i < k; i++ {
			if aParts[i].NumRecords() > 0 && dParts[i].NumRecords() > 0 {
				live = append(live, i)
			}
		}
		if degree := ctx.parallelDegree(len(live)); degree > 1 {
			shared := &lockedSink{sink: sink}
			return ctx.runParallel(degree, len(live), "vsubjoin",
				func(t int) string { return fmt.Sprintf("part=%d depth=%d", live[t], depth) },
				func(child *Context, t int) error {
					ai := aParts[live[t]].WithPool(child.Pool)
					di := dParts[live[t]].WithPool(child.Pool)
					ws := child.Wrap(shared)
					mp := ai.NumPages()
					if p := di.NumPages(); p < mp {
						mp = p
					}
					if mp <= int64(child.b()-2) {
						return memoryContainmentJoin(child, ai, di, ws)
					}
					return vpj(child, ai, di, ws, l+1, depth+1)
				})
		}
	}
	for i := 0; i < k; i++ {
		ai, di := aParts[i], dParts[i]
		// Purge: a partition pair with an empty side yields nothing.
		if ai.NumRecords() == 0 || di.NumRecords() == 0 {
			continue
		}
		mp := ai.NumPages()
		if p := di.NumPages(); p < mp {
			mp = p
		}
		if mp <= int64(b-2) {
			err = memoryContainmentJoin(ctx, ai, di, sink)
		} else {
			err = vpj(ctx, ai, di, sink, l+1, depth+1)
		}
		if err != nil {
			return err
		}
		if err := ai.Free(); err != nil {
			return err
		}
		if err := di.Free(); err != nil {
			return err
		}
	}
	return nil
}

// vPartition writes rel into the k partitions of cut level l whose
// level-l position indexes start at offset (the data LCA's leftmost
// leaf-of-cut). For the ancestor side (replicate = true) records above the
// cut go to every partition in their (clamped) subtree range; for the
// descendant side they go to the leftmost one only. Records at or below
// the cut have exactly one partition: that of their level-l ancestor (or
// themselves).
func vPartition(ctx *Context, rel *relation.Relation, l int, offset uint64, k int, replicate bool) ([]*relation.Relation, error) {
	h := ctx.TreeHeight
	side := "vd"
	if replicate {
		side = "va"
	}
	parts := make([]*relation.Relation, k)
	apps := make([]*relation.Appender, k)
	for i := range parts {
		parts[i] = relation.New(ctx.Pool, ctx.tmp(side))
		parts[i].SetCompress(rel.Compressed())
	}
	closeApps := func() error {
		var first error
		for _, ap := range apps {
			if ap != nil {
				if err := ap.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		return first
	}
	// fail cleans up on any error: the caller never sees the partitions, so
	// they must be freed here or they leak.
	fail := func(err error) ([]*relation.Relation, error) {
		closeApps() //nolint:errcheck // first error wins
		freeAll(parts)
		return nil, err
	}
	appendTo := func(i int, r relation.Rec) error {
		if apps[i] == nil {
			apps[i] = parts[i].NewAppender()
			ctx.stats().Partitions++
		}
		return apps[i].Append(r)
	}
	cutHeight := h - l - 1 // height of the level-l nodes
	// route places one record; the batch and serial scan loops below share
	// it so the partition logic exists once.
	route := func(r relation.Rec, rh int) error {
		if rh >= h {
			return fmt.Errorf("core: code %v does not fit a PBiTree of height %d (ctx.TreeHeight too small)", r.Code, h)
		}
		if rh <= cutHeight {
			// At or below the cut: the level-l ancestor names the
			// partition. For a node at the cut, F at its own height is
			// itself.
			anc := pbicode.F(r.Code, cutHeight)
			alpha := uint64(anc) >> uint(cutHeight+1)
			if alpha < offset || alpha >= offset+uint64(k) {
				return fmt.Errorf("core: code %v outside the partitioning span (corrupt relation span?)", r.Code)
			}
			return appendTo(int(alpha-offset), r)
		}
		// Above the cut: clamp the subtree's partition range to the span
		// under the LCA (ancestors of the LCA cover all partitions).
		glo, ghi := r.Code.SubtreeRange(l, h)
		if glo < offset {
			glo = offset
		}
		if hiMax := offset + uint64(k) - 1; ghi > hiMax {
			ghi = hiMax
		}
		if ghi < glo {
			return fmt.Errorf("core: code %v outside the partitioning span (corrupt relation span?)", r.Code)
		}
		lo, hi := glo-offset, ghi-offset
		if !replicate {
			return appendTo(int(lo), r)
		}
		for i := lo; i <= hi; i++ {
			if err := appendTo(int(i), r); err != nil {
				return err
			}
		}
		ctx.stats().Replicated += int64(hi - lo)
		return nil
	}
	if ctx.batch() {
		bs := rel.BatchScan()
		for bs.Next() {
			codes, aux := bs.Codes(), bs.Aux()
			for i, c := range codes {
				if err := route(relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}, bits.TrailingZeros64(c)); err != nil {
					return fail(err)
				}
			}
		}
		if err := bs.Err(); err != nil {
			return fail(err)
		}
	} else {
		s := rel.Scan()
		defer s.Close()
		for s.Next() {
			r := s.Rec()
			if err := route(r, r.Code.Height()); err != nil {
				return fail(err)
			}
		}
		if err := s.Err(); err != nil {
			return fail(err)
		}
	}
	if err := closeApps(); err != nil {
		freeAll(parts)
		return nil, err
	}
	return parts, nil
}

// memoryContainmentJoin is Algorithm 6: when D fits the memory budget it
// is loaded and sorted by region Start, and each scanned ancestor probes it
// by binary search (the in-memory index nested loop of the paper);
// otherwise MHCJ+Rollup takes over (its hash table then holds the A side,
// which is the side known to fit).
func memoryContainmentJoin(ctx *Context, a, d *relation.Relation, sink Sink) error {
	b := ctx.b()
	if d.NumPages() <= int64(b-2) {
		return memProbeJoin(ctx, a, d, sink)
	}
	// A fits, D does not: the rollup join's build side is A.
	return mhcjRollup(ctx, a, d, 0, sink)
}

// memProbeJoin loads d, sorts it by Start, and probes with each a: the
// descendants of a are exactly the loaded records with Start in
// [a.Start, a.End] and height below a's (closed-region semantics).
func memProbeJoin(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sp := ctx.Trace.Start("mem-join")
	defer ctx.Trace.End(sp)
	if ctx.batch() {
		return memProbeJoinBatch(ctx, a, d, sink)
	}
	recs, err := d.ReadAll()
	if err != nil {
		return err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Code.Start() < recs[j].Code.Start() })
	starts := make([]uint64, len(recs))
	for i, r := range recs {
		starts[i] = r.Code.Start()
	}
	s := a.Scan()
	defer s.Close()
	for s.Next() {
		ar := s.Rec()
		ha := ar.Code.Height()
		lo := sort.Search(len(starts), func(i int) bool { return starts[i] >= ar.Code.Start() })
		end := ar.Code.End()
		for i := lo; i < len(starts) && starts[i] <= end; i++ {
			if recs[i].Code.Height() < ha {
				if err := sink.Emit(ar, recs[i]); err != nil {
					return err
				}
			}
		}
	}
	return s.Err()
}
