// Package core implements the containment join algorithms of the paper over
// PBiTree-encoded relations: the horizontal-partitioning joins (SHCJ, MHCJ,
// MHCJ+Rollup), the vertical-partitioning join (VPJ) with its I/O-optimal
// memory joins, and the adapted region-code baselines (index nested loop,
// MPMGJN, stack-tree, ADB+), plus the framework that selects among them
// (Table 1 of the paper).
//
// Every algorithm consumes relations of PBiTree-coded element records
// through the shared buffer pool, so page I/O counts and the virtual disk
// clock reflect exactly the accesses each algorithm performs. Algorithms
// respect a memory budget of b buffer pages; in-memory working sets are
// sized in record-equivalents of that budget.
package core

import (
	"context"
	"fmt"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/internal/trace"
	"github.com/pbitree/pbitree/pbicode"
)

// Context carries the engine configuration shared by one join execution.
type Context struct {
	// Pool is the buffer pool all I/O goes through.
	Pool *buffer.Pool
	// B is the memory budget in pages. Zero means the pool size.
	B int
	// TreeHeight is the height H of the PBiTree the element codes come
	// from; the vertical partitioning join needs it to name partition
	// levels. Required for VPJ, ignored by the other algorithms.
	TreeHeight int
	// MaxAncestorHeight, when non-zero, is a known upper bound on the
	// heights of ancestor-set elements (catalog statistics, as the paper
	// assumes for the rollup target choice). When zero, MHCJ+Rollup
	// discovers it with an extra scan whose I/O is charged normally.
	MaxAncestorHeight int
	// VPJRootCut makes VPJ choose cut levels relative to the tree root,
	// as the paper's Algorithm 5 literally states, instead of relative to
	// the data's LCA (this implementation's default). Exists for ablation
	// A8; root-relative cuts degrade on skewed document embeddings.
	VPJRootCut bool
	// Stats accumulates execution counters when non-nil.
	Stats *Stats
	// Trace records per-phase spans when non-nil (EXPLAIN ANALYZE and
	// serving telemetry). Nil disables recording: the algorithms' phase
	// boundaries cost one nil check and allocate nothing.
	Trace *trace.Recorder
	// Ctx, when non-nil, makes the execution cancelable: cancellation is
	// polled at page-I/O granularity through the buffer pool (ArmPool) and
	// every 1024 emitted pairs, and surfaces as ErrCanceled or
	// ErrDeadlineExceeded. Nil means uncancelable, at the cost of one nil
	// check per page request — the same bargain trace.Recorder strikes.
	Ctx context.Context
	// Parallel is the worker degree for the partition fan-outs (MHCJ
	// per-height equijoins, VPJ per-subtree joins, extsort run
	// generation). Values <= 1 mean serial execution on the calling
	// goroutine — byte-for-byte the pre-parallel code paths. See
	// doc/PARALLEL.md for the execution model.
	Parallel int
	// NoBatch disables the batched (slab) execution kernels and runs the
	// record-at-a-time reference paths instead — the escape hatch and the
	// baseline side of batch-vs-serial equivalence tests. The zero value
	// means batching is ON: batch is the default execution core.
	NoBatch bool

	tmpSeq int
}

// batch reports whether the batched kernels are enabled.
func (c *Context) batch() bool { return !c.NoBatch }

// b returns the effective memory budget in pages, at least 3.
func (c *Context) b() int {
	b := c.B
	if b <= 0 || b > c.Pool.Size() {
		b = c.Pool.Size()
	}
	if b < 3 {
		b = 3
	}
	return b
}

// perPage returns records per page.
func (c *Context) perPage() int { return relation.PerPage(c.Pool.PageSize()) }

// memRecs returns the record capacity of n pages of memory.
func (c *Context) memRecs(n int) int { return n * c.perPage() }

// tmp returns a fresh temporary relation name.
func (c *Context) tmp(kind string) string {
	c.tmpSeq++
	return fmt.Sprintf("tmp.%s.%d", kind, c.tmpSeq)
}

// stats returns the stats collector, never nil.
func (c *Context) stats() *Stats {
	if c.Stats == nil {
		c.Stats = &Stats{}
	}
	return c.Stats
}

// Stats collects algorithm-level counters for one join execution. Page I/O
// and virtual time are tracked by the storage layer, not here.
type Stats struct {
	// Pairs is the number of result pairs emitted.
	Pairs int64
	// FalseHits counts rollup equijoin matches rejected by the
	// verification filter (Table 2(f) of the paper).
	FalseHits int64
	// Partitions counts partition files written (horizontal heights,
	// hash partitions, vertical groups).
	Partitions int64
	// Replicated counts A-side records written more than once by the
	// vertical partitioning (section 3.3's node replication).
	Replicated int64
	// MaxRecursion is the deepest VPJ / hash-partitioning recursion.
	MaxRecursion int
	// Rescans counts descendant-segment re-reads by MPMGJN.
	Rescans int64
	// IndexProbes counts index probes by INLJN and skip seeks by ADB+.
	IndexProbes int64
}

// Sink consumes join result pairs (a, d), a a proper ancestor of d.
type Sink interface {
	Emit(a, d relation.Rec) error
}

// CountSink counts pairs and discards them. The paper's measurements
// likewise exclude result materialization from algorithm cost.
type CountSink struct{ N int64 }

// Emit implements Sink.
func (s *CountSink) Emit(a, d relation.Rec) error { s.N++; return nil }

// PairSink collects pairs in memory (tests and small queries).
type PairSink struct{ Pairs []Pair }

// Pair is one join result.
type Pair struct{ A, D pbicode.Code }

// Emit implements Sink.
func (s *PairSink) Emit(a, d relation.Rec) error {
	s.Pairs = append(s.Pairs, Pair{A: a.Code, D: d.Code})
	return nil
}

// RelationSink materializes results into a relation, one record per pair:
// Code = descendant code, Aux = ancestor code. This is the format a
// follow-up containment join or a result consumer would read.
type RelationSink struct{ Out *relation.Relation }

// Emit implements Sink.
func (s *RelationSink) Emit(a, d relation.Rec) error {
	return s.Out.Append(relation.Rec{Code: d.Code, Aux: uint64(a.Code)})
}

// countingSink wraps a sink, bumping ctx stats and polling cancellation
// every 1024 pairs so CPU-bound emission loops (in-memory joins, cross
// products) stay responsive even between page requests.
type countingSink struct {
	sink  Sink
	stats *Stats
	ctx   *Context
}

func (s countingSink) Emit(a, d relation.Rec) error {
	s.stats.Pairs++
	if s.stats.Pairs&1023 == 0 {
		if err := s.ctx.Canceled(); err != nil {
			return err
		}
	}
	return s.sink.Emit(a, d)
}

// wrap attaches pair counting to a user sink.
func (c *Context) Wrap(sink Sink) Sink {
	return countingSink{sink: sink, stats: c.stats(), ctx: c}
}

// HeightHistogram scans rel and returns counts of records per PBiTree
// height. It costs one relation scan.
func HeightHistogram(rel *relation.Relation) (map[int]int64, error) {
	hist := make(map[int]int64)
	s := rel.Scan()
	defer s.Close()
	for s.Next() {
		hist[s.Rec().Code.Height()]++
	}
	return hist, s.Err()
}

// maxHeight returns the largest key of a height histogram, -1 when empty.
func maxHeight(hist map[int]int64) int {
	maxH := -1
	for h := range hist {
		if h > maxH {
			maxH = h
		}
	}
	return maxH
}

// quantileHeight returns the smallest height h such that at least frac of
// the histogram's mass lies at or below h.
func quantileHeight(hist map[int]int64, frac float64) int {
	var total int64
	maxH := 0
	for h, n := range hist {
		total += n
		if h > maxH {
			maxH = h
		}
	}
	if total == 0 {
		return 0
	}
	want := int64(float64(total) * frac)
	var cum int64
	for h := 0; h <= maxH; h++ {
		cum += hist[h]
		if cum >= want {
			return h
		}
	}
	return maxH
}

// NestedLoop is the naive block nested-loop containment join: it loads
// chunks of A into memory and scans D once per chunk, testing Lemma 1
// directly. It needs no sorting, index, or partitioning, serves as the
// correctness oracle in tests, and is the terminal fallback of the
// recursive algorithms.
func NestedLoop(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sink = ctx.Wrap(sink)
	sp := ctx.Trace.Start("nested-loop")
	defer ctx.Trace.End(sp)
	chunkCap := ctx.memRecs(ctx.b() - 2)
	if chunkCap < 1 {
		chunkCap = 1
	}
	chunk := make([]relation.Rec, 0, chunkCap)
	join := func() error {
		if len(chunk) == 0 {
			return nil
		}
		s := d.Scan()
		defer s.Close()
		for s.Next() {
			dr := s.Rec()
			for _, ar := range chunk {
				if pbicode.IsAncestor(ar.Code, dr.Code) {
					if err := sink.Emit(ar, dr); err != nil {
						return err
					}
				}
			}
		}
		return s.Err()
	}
	s := a.Scan()
	defer s.Close()
	for s.Next() {
		chunk = append(chunk, s.Rec())
		if len(chunk) == chunkCap {
			if err := join(); err != nil {
				return err
			}
			chunk = chunk[:0]
		}
	}
	if err := s.Err(); err != nil {
		return err
	}
	return join()
}
