package core

import (
	"math/rand"
	"testing"
)

func TestSortCost(t *testing.T) {
	// Fits in memory: one run, no merge: 2R.
	if got := sortCost(100, 500); got != 200 {
		t.Fatalf("in-memory sort cost = %d", got)
	}
	// 4000 pages, 500 buffer: 8 runs, one merge pass: 2R*2.
	if got := sortCost(4000, 500); got != 16000 {
		t.Fatalf("one-pass sort cost = %d", got)
	}
	// Tiny buffer: multiple passes.
	if got := sortCost(1000, 4); got <= 2*1000*2 {
		t.Fatalf("multi-pass sort cost = %d", got)
	}
	if sortCost(0, 10) != 0 {
		t.Fatal("empty sort cost")
	}
}

func TestEstimateIOShapes(t *testing.T) {
	in := CostInputs{APages: 4000, DPages: 4000, ARecs: 1e6, DRecs: 1e6, B: 500}
	rollup := EstimateIO(AlgMHCJRollup, in)
	if rollup != 3*(4000+4000) {
		t.Fatalf("rollup = %d", rollup)
	}
	st := EstimateIO(AlgStackTree, in)
	// Sort both (16000 each) + merge 8000.
	if st != 16000+16000+8000 {
		t.Fatalf("stacktree = %d", st)
	}
	if rollup >= st {
		t.Fatal("partitioning not cheaper than sorting on the paper's setting")
	}
	// Pre-sorted inputs flip the comparison.
	in.SortedA, in.SortedD = true, true
	if got := EstimateIO(AlgStackTree, in); got != 8000 || got >= rollup {
		t.Fatalf("sorted stacktree = %d", got)
	}
	// Small inputs: everything collapses toward a+d.
	small := CostInputs{APages: 10, DPages: 10, ARecs: 2000, DRecs: 2000, B: 500}
	if got := EstimateIO(AlgVPJ, small); got != 20 {
		t.Fatalf("small VPJ = %d", got)
	}
	// INLJN pays per-probe costs: far worse than merging on large inputs.
	if inl := EstimateIO(AlgINLJN, in); inl <= st {
		t.Fatalf("INLJN = %d vs stacktree %d", inl, st)
	}
	if nl := EstimateIO(AlgNestedLoop, in); nl <= rollup {
		t.Fatalf("nested loop suspiciously cheap: %d", nl)
	}
	if EstimateIO(Algorithm(77), in) < 1<<61 {
		t.Fatal("unknown algorithm not penalized")
	}
}

func TestEstimateMHCJ(t *testing.T) {
	in := CostInputs{APages: 1000, DPages: 1000, B: 100, HeightsA: 6}
	if got := EstimateIO(AlgMHCJ, in); got != 5*1000+3*6*1000 {
		t.Fatalf("MHCJ = %d", got)
	}
	in.HeightsA = 0 // unknown defaults to 4
	if got := EstimateIO(AlgMHCJ, in); got != 5*1000+3*4*1000 {
		t.Fatalf("MHCJ default-k = %d", got)
	}
}

func TestChooseByCost(t *testing.T) {
	ctx := newCtx(t, 8, 12)
	rng := rand.New(rand.NewSource(30))
	big := load(t, ctx, "big", randCodes(rng, 4000, 12, -1))
	small := load(t, ctx, "small", randCodes(rng, 30, 12, -1))
	// Unsorted large inputs: a partitioning algorithm must win.
	switch alg := ChooseByCost(ctx, InputSpec{}, big, big); alg {
	case AlgMHCJRollup, AlgVPJ:
	default:
		t.Fatalf("unsorted big x big chose %v", alg)
	}
	// Sorted inputs: the merge join is free of sort cost and wins.
	if alg := ChooseByCost(ctx, InputSpec{SortedA: true, SortedD: true}, big, big); alg != AlgStackTree && alg != AlgADBPlus {
		t.Fatalf("sorted chose %v", alg)
	}
	// Tiny input either way: any a+d algorithm; must not pick nested loop
	// or MHCJ.
	if alg := ChooseByCost(ctx, InputSpec{}, small, small); alg == AlgNestedLoop || alg == AlgMHCJ {
		t.Fatalf("tiny chose %v", alg)
	}
	// Single-height unlocks SHCJ, which wins its cost ties.
	if alg := ChooseByCost(ctx, InputSpec{SingleHeightA: true}, big, big); alg != AlgSHCJ {
		t.Fatalf("single-height chose %v", alg)
	}
}

// TestCostModelTracksReality runs the estimator against actual executions:
// predictions must land within a small factor of measured page I/O for the
// bulk algorithms (this is the validation behind ablation A5).
func TestCostModelTracksReality(t *testing.T) {
	const h = 22
	rng := rand.New(rand.NewSource(31))
	// Large enough that nothing fits the 8-frame pool.
	aCodes := randCodes(rng, 3000, h, -1)
	dCodes := randCodes(rng, 3000, h, -1)
	for _, alg := range []Algorithm{AlgMHCJRollup, AlgVPJ, AlgStackTree} {
		ctx := newCtx(t, 8, h)
		a := load(t, ctx, "A", aCodes)
		d := load(t, ctx, "D", dCodes)
		if err := ctx.Pool.FlushAll(); err != nil {
			t.Fatal(err)
		}
		disk := ctx.Pool.Disk()
		before := disk.Stats()
		if _, err := Run(ctx, alg, InputSpec{}, a, d, &CountSink{}); err != nil {
			t.Fatal(err)
		}
		measured := disk.Stats().Sub(before).Total()
		predicted := EstimateIO(alg, Gather(ctx, InputSpec{}, a, d))
		lo, hi := predicted/3, predicted*3
		if measured < lo || measured > hi {
			t.Errorf("%v: predicted %d, measured %d (outside 3x)", alg, predicted, measured)
		}
	}
}
