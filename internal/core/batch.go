package core

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/pbicode"
)

// This file is the batched (vectorized) execution core: slab variants of
// the equijoin engine, the partitioning passes, and the memory joins.
// Each variant consumes relation.BatchScanner column slabs — a []uint64 of
// codes and a []uint64 of aux words per page — and derives join keys with
// the branch-free pbicode batch kernels, so the per-record work in the hot
// loops is a few ALU ops and one open-addressing probe instead of a
// Scanner.Next call, a map lookup, and a closure dispatch.
//
// Every batch variant is behaviorally identical to its record-at-a-time
// counterpart: same pairs (order may differ within a page only where the
// serial path also gives no order guarantee), same partition contents,
// same trace spans, same page access pattern — the phase-attribution
// tests that lock per-phase sums to IOStats hold on both paths. The
// serial paths remain intact behind Context.NoBatch (the -batch=off
// escape hatch) and serve as the baseline in the randomized equivalence
// tests.

// flatSlot is one open-addressing slot: the join key and the 1-based head
// of its chain in the arena (0 = empty slot).
type flatSlot struct {
	key  uint64
	head int32
}

// flatTable is the batch path's hash table: open addressing with linear
// probing over power-of-two slots, chaining duplicate keys through a flat
// arena exactly like the map-based hashTable. A probe is a splitmix64 mix
// plus a short linear scan of 16-byte slots — several times cheaper than
// a Go map lookup, which is what the probe loop of every equijoin spends
// its time on.
type flatTable struct {
	mask  uint64
	slots []flatSlot
	recs  []relation.Rec
	next  []int32 // 1-based index of the previous entry with the same key
	used  int     // occupied slots (distinct keys)
}

func newFlatTable(capacity int64) *flatTable {
	if capacity < 0 || capacity > 1<<30 {
		capacity = 0
	}
	size := 16
	for int64(size) < capacity*2 {
		size <<= 1
	}
	return &flatTable{
		mask:  uint64(size - 1),
		slots: make([]flatSlot, size),
		recs:  make([]relation.Rec, 0, capacity),
		next:  make([]int32, 0, capacity),
	}
}

// grow doubles the slot array and rehashes. Chains live in the arena and
// are untouched — only the heads move.
func (t *flatTable) grow() {
	old := t.slots
	size := len(old) * 2
	t.slots = make([]flatSlot, size)
	t.mask = uint64(size - 1)
	for _, s := range old {
		if s.head == 0 {
			continue
		}
		i := splitmix64(s.key) & t.mask
		for t.slots[i].head != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = s
	}
}

// add stores r under key.
func (t *flatTable) add(key uint64, r relation.Rec) {
	if (t.used+1)*2 > len(t.slots) {
		t.grow()
	}
	t.recs = append(t.recs, r)
	t.next = append(t.next, 0)
	idx := int32(len(t.recs))
	i := splitmix64(key) & t.mask
	for {
		s := &t.slots[i]
		if s.head == 0 {
			s.key, s.head = key, idx
			t.used++
			return
		}
		if s.key == key {
			t.next[idx-1] = s.head
			s.head = idx
			return
		}
		i = (i + 1) & t.mask
	}
}

// probe returns the 1-based head of key's chain, 0 when absent. Walk the
// chain via next: for i := probe(k); i != 0; i = next[i-1] { recs[i-1] }.
func (t *flatTable) probe(key uint64) int32 {
	i := splitmix64(key) & t.mask
	for {
		s := t.slots[i]
		if s.head == 0 {
			return 0
		}
		if s.key == key {
			return s.head
		}
		i = (i + 1) & t.mask
	}
}

func (t *flatTable) len() int { return len(t.recs) }

// reset empties the table keeping its capacity (block-join chunk reuse).
func (t *flatTable) reset() {
	clear(t.slots)
	t.recs = t.recs[:0]
	t.next = t.next[:0]
	t.used = 0
}

// fMask/fBit are the constants of the branch-free F derivation at height
// h: F(c,h) = c&fMask | fBit. lowMask tests eligibility — a descendant
// participates iff its height is below h, i.e. c&lowMask != 0.
func fMask(h int) (mask, bit, lowMask uint64) {
	return ^uint64(0) << (uint(h) + 1), uint64(1) << uint(h), uint64(1)<<uint(h) - 1
}

// hashJoinBuildABatch is the slab variant of hashJoinBuildA: build the
// flat table over (prepped) A, then stream D page slabs, deriving each
// probe key branch-free.
func hashJoinBuildABatch(ctx *Context, a, d *relation.Relation, h int, prep aPrep, sink Sink) error {
	table := newFlatTable(a.NumRecords())
	as := a.BatchScan()
	for as.Next() {
		codes, aux := as.Codes(), as.Aux()
		if prep == nil {
			for i, c := range codes {
				table.add(c, relation.Rec{Code: pbicode.Code(c), Aux: aux[i]})
			}
		} else {
			for i, c := range codes {
				r := prep(relation.Rec{Code: pbicode.Code(c), Aux: aux[i]})
				table.add(uint64(r.Code), r)
			}
		}
	}
	if err := as.Err(); err != nil {
		return err
	}
	mask, bit, low := fMask(h)
	ds := d.BatchScan()
	for ds.Next() {
		codes, aux := ds.Codes(), ds.Aux()
		for i, c := range codes {
			if c&low == 0 {
				continue // at or above height h: cannot have an ancestor there
			}
			idx := table.probe(c&mask | bit)
			if idx == 0 {
				continue
			}
			dr := relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}
			for ; idx != 0; idx = table.next[idx-1] {
				if err := sink.Emit(table.recs[idx-1], dr); err != nil {
					return err
				}
			}
		}
	}
	return ds.Err()
}

// hashJoinBuildDBatch is the slab variant of hashJoinBuildD: the table is
// keyed by FBatch-derived codes of eligible D records, probed with
// (prepped) A codes.
func hashJoinBuildDBatch(ctx *Context, a, d *relation.Relation, h int, prep aPrep, sink Sink) error {
	table := newFlatTable(d.NumRecords())
	_, _, low := fMask(h)
	var fkeys []uint64
	ds := d.BatchScan()
	for ds.Next() {
		codes, aux := ds.Codes(), ds.Aux()
		if cap(fkeys) < len(codes) {
			fkeys = make([]uint64, len(codes))
		}
		fkeys = fkeys[:len(codes)]
		pbicode.FBatch(fkeys, codes, h)
		for i, c := range codes {
			if c&low != 0 {
				table.add(fkeys[i], relation.Rec{Code: pbicode.Code(c), Aux: aux[i]})
			}
		}
	}
	if err := ds.Err(); err != nil {
		return err
	}
	as := a.BatchScan()
	for as.Next() {
		codes, aux := as.Codes(), as.Aux()
		for i, c := range codes {
			ar := relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}
			if prep != nil {
				ar = prep(ar)
			}
			for idx := table.probe(uint64(ar.Code)); idx != 0; idx = table.next[idx-1] {
				if err := sink.Emit(ar, table.recs[idx-1]); err != nil {
					return err
				}
			}
		}
	}
	return as.Err()
}

// blockEquiJoinBatch is the slab variant of blockEquiJoin: flat-table
// chunks of A, D rescanned per chunk through one resettable batch scanner
// (no per-block scanner or buffer churn).
func blockEquiJoinBatch(ctx *Context, a, d *relation.Relation, h int, prep aPrep, sink Sink) error {
	chunkCap := ctx.memRecs(ctx.b() - 2)
	if chunkCap < 1 {
		chunkCap = 1
	}
	table := newFlatTable(int64(chunkCap))
	mask, bit, low := fMask(h)
	var ds relation.BatchScanner
	join := func() error {
		if table.len() == 0 {
			return nil
		}
		ds.Reset(d)
		for ds.Next() {
			codes, aux := ds.Codes(), ds.Aux()
			for i, c := range codes {
				if c&low == 0 {
					continue
				}
				idx := table.probe(c&mask | bit)
				if idx == 0 {
					continue
				}
				dr := relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}
				for ; idx != 0; idx = table.next[idx-1] {
					if err := sink.Emit(table.recs[idx-1], dr); err != nil {
						return err
					}
				}
			}
		}
		return ds.Err()
	}
	as := a.BatchScan()
	for as.Next() {
		codes, aux := as.Codes(), as.Aux()
		for i, c := range codes {
			r := relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}
			if prep != nil {
				r = prep(r)
			}
			table.add(uint64(r.Code), r)
			if table.len() == chunkCap {
				if err := join(); err != nil {
					return err
				}
				table.reset()
			}
		}
	}
	if err := as.Err(); err != nil {
		return err
	}
	return join()
}

// hashPartitionBatchA is the slab variant of graceJoin's ancestor-side
// partitioning pass: every record is kept, keyed by its (prepped) code.
func hashPartitionBatchA(ctx *Context, rel *relation.Relation, k int, kind string, prep aPrep, salt uint64) ([]*relation.Relation, error) {
	return hashPartitionBatch(ctx, rel, k, kind, salt, func(codes, aux []uint64, emit func(relation.Rec, uint64) error) error {
		if prep == nil {
			for i, c := range codes {
				if err := emit(relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}, c); err != nil {
					return err
				}
			}
			return nil
		}
		for i, c := range codes {
			r := prep(relation.Rec{Code: pbicode.Code(c), Aux: aux[i]})
			if err := emit(r, uint64(r.Code)); err != nil {
				return err
			}
		}
		return nil
	})
}

// hashPartitionBatchD is the slab variant of graceJoin's descendant-side
// partitioning pass: eligible records (height below h) keyed by their
// FBatch-derived join code.
func hashPartitionBatchD(ctx *Context, rel *relation.Relation, k int, kind string, h int, salt uint64) ([]*relation.Relation, error) {
	_, _, low := fMask(h)
	var fkeys []uint64
	return hashPartitionBatch(ctx, rel, k, kind, salt, func(codes, aux []uint64, emit func(relation.Rec, uint64) error) error {
		if cap(fkeys) < len(codes) {
			fkeys = make([]uint64, len(codes))
		}
		fkeys = fkeys[:len(codes)]
		pbicode.FBatch(fkeys, codes, h)
		for i, c := range codes {
			if c&low == 0 {
				continue
			}
			if err := emit(relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}, fkeys[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// hashPartitionBatch carries the shared partition-file plumbing of the two
// slab partitioners; page is called once per page slab with an emit that
// routes one kept record by its hash key. Partitions inherit the input's
// page format.
func hashPartitionBatch(ctx *Context, rel *relation.Relation, k int, kind string, salt uint64, page func(codes, aux []uint64, emit func(relation.Rec, uint64) error) error) ([]*relation.Relation, error) {
	parts := make([]*relation.Relation, k)
	apps := make([]*relation.Appender, k)
	for i := range parts {
		parts[i] = relation.New(ctx.Pool, ctx.tmp(kind))
		parts[i].SetCompress(rel.Compressed())
	}
	closeApps := func() error {
		var first error
		for _, ap := range apps {
			if ap != nil {
				if err := ap.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		return first
	}
	fail := func(err error) ([]*relation.Relation, error) {
		closeApps() //nolint:errcheck // first error wins
		freeAll(parts)
		return nil, err
	}
	emit := func(r relation.Rec, kv uint64) error {
		i := int(splitmix64(kv^salt) % uint64(k))
		if apps[i] == nil {
			apps[i] = parts[i].NewAppender()
			ctx.stats().Partitions++
		}
		return apps[i].Append(r)
	}
	s := rel.BatchScan()
	for s.Next() {
		if err := page(s.Codes(), s.Aux(), emit); err != nil {
			return fail(err)
		}
	}
	if err := s.Err(); err != nil {
		return fail(err)
	}
	if err := closeApps(); err != nil {
		freeAll(parts)
		return nil, err
	}
	return parts, nil
}

// partitionByHeightBatch is the slab variant of partitionByHeight: heights
// come from a TrailingZeros per slab element instead of a method call per
// record; the wave structure (at most b-2 new heights per pass) and the
// resulting partitions are identical.
func partitionByHeightBatch(ctx *Context, rel *relation.Relation) (map[int]*relation.Relation, []int, error) {
	parts := make(map[int]*relation.Relation)
	done := make(map[int]bool)
	freeParts := func() {
		for _, p := range parts {
			p.Free() //nolint:errcheck // cleanup after earlier error
		}
	}
	var s relation.BatchScanner
	for {
		apps := make(map[int]*relation.Appender)
		closeApps := func() error {
			var first error
			for _, ap := range apps {
				if err := ap.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		}
		deferred := false
		s.Reset(rel)
		for s.Next() {
			codes, aux := s.Codes(), s.Aux()
			for i, c := range codes {
				h := bits.TrailingZeros64(c)
				if done[h] {
					continue
				}
				ap, ok := apps[h]
				if !ok {
					if len(apps)+2 > ctx.b() {
						deferred = true // another wave picks this height up
						continue
					}
					parts[h] = relation.New(ctx.Pool, ctx.tmp(fmt.Sprintf("mhcj.h%d", h)))
					parts[h].SetCompress(rel.Compressed())
					ap = parts[h].NewAppender()
					apps[h] = ap
					ctx.stats().Partitions++
				}
				if err := ap.Append(relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}); err != nil {
					closeApps() //nolint:errcheck // first error wins
					freeParts()
					return nil, nil, err
				}
			}
		}
		if err := s.Err(); err != nil {
			closeApps() //nolint:errcheck // first error wins
			freeParts()
			return nil, nil, err
		}
		if err := closeApps(); err != nil {
			freeParts()
			return nil, nil, err
		}
		for h := range apps {
			done[h] = true
		}
		if !deferred {
			break
		}
	}
	heights := make([]int, 0, len(parts))
	for h := range parts {
		heights = append(heights, h)
	}
	sort.Ints(heights)
	return parts, heights, nil
}

// heightHistogramBatch is the slab variant of HeightHistogram.
func heightHistogramBatch(rel *relation.Relation) (map[int]int64, error) {
	hist := make(map[int]int64)
	s := rel.BatchScan()
	for s.Next() {
		for _, c := range s.Codes() {
			hist[bits.TrailingZeros64(c)]++
		}
	}
	return hist, s.Err()
}

// multiHeightProbeJoinBatch is the slab variant of multiHeightProbeJoin:
// the memory-resident multi-height ancestor table is probed with the
// branch-free F derivation for each distinct ancestor height, per D page
// slab.
func multiHeightProbeJoinBatch(ctx *Context, a, d *relation.Relation, sink Sink) error {
	table := newFlatTable(a.NumRecords())
	heightSet := make(map[int]struct{})
	as := a.BatchScan()
	for as.Next() {
		codes, aux := as.Codes(), as.Aux()
		for i, c := range codes {
			table.add(c, relation.Rec{Code: pbicode.Code(c), Aux: aux[i]})
			heightSet[bits.TrailingZeros64(c)] = struct{}{}
		}
	}
	if err := as.Err(); err != nil {
		return err
	}
	masks := make([][3]uint64, 0, len(heightSet))
	for h := range heightSet {
		m, b, low := fMask(h)
		masks = append(masks, [3]uint64{m, b, low})
	}
	ds := d.BatchScan()
	for ds.Next() {
		codes, aux := ds.Codes(), ds.Aux()
		for i, c := range codes {
			for _, mb := range masks {
				if c&mb[2] == 0 {
					continue // descendant at or above this ancestor height
				}
				idx := table.probe(c&mb[0] | mb[1])
				if idx == 0 {
					continue
				}
				dr := relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}
				for ; idx != 0; idx = table.next[idx-1] {
					if err := sink.Emit(table.recs[idx-1], dr); err != nil {
						return err
					}
				}
			}
		}
	}
	return ds.Err()
}

// memProbeJoinBatch is the slab variant of memProbeJoin: D is loaded and
// sorted by region Start as before; A streams as page slabs whose regions
// are derived in one RegionBatch pass, each probing the sorted starts.
func memProbeJoinBatch(ctx *Context, a, d *relation.Relation, sink Sink) error {
	recs, err := d.ReadAll()
	if err != nil {
		return err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Code.Start() < recs[j].Code.Start() })
	starts := make([]uint64, len(recs))
	hts := make([]int, len(recs))
	for i, r := range recs {
		starts[i] = r.Code.Start()
		hts[i] = r.Code.Height()
	}
	var aStarts, aEnds []uint64
	as := a.BatchScan()
	for as.Next() {
		codes, aux := as.Codes(), as.Aux()
		if cap(aStarts) < len(codes) {
			aStarts = make([]uint64, len(codes))
			aEnds = make([]uint64, len(codes))
		}
		aStarts, aEnds = aStarts[:len(codes)], aEnds[:len(codes)]
		pbicode.RegionBatch(aStarts, aEnds, codes)
		for i, c := range codes {
			ha := bits.TrailingZeros64(c)
			lo := sort.Search(len(starts), func(j int) bool { return starts[j] >= aStarts[i] })
			if lo == len(starts) || starts[lo] > aEnds[i] {
				continue
			}
			ar := relation.Rec{Code: pbicode.Code(c), Aux: aux[i]}
			for j := lo; j < len(starts) && starts[j] <= aEnds[i]; j++ {
				if hts[j] < ha {
					if err := sink.Emit(ar, recs[j]); err != nil {
						return err
					}
				}
			}
		}
	}
	return as.Err()
}
