package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/internal/trace"
	"github.com/pbitree/pbitree/pbicode"
)

// parallelAlgorithms lists the joins whose execution changes under
// Context.Parallel: the partition fan-outs (MHCJ, MHCJ+Rollup, VPJ), the
// rule-based Auto dispatch, and the sort-backed baselines whose on-the-fly
// external sorts run their run-generation phase in parallel.
func parallelAlgorithms() map[string]joinFunc {
	return map[string]joinFunc{
		"MHCJ":       MHCJ,
		"MHCJRollup": func(ctx *Context, a, d *relation.Relation, s Sink) error { return MHCJRollup(ctx, a, d, 0, s) },
		"VPJ":        VPJ,
		"Auto": func(ctx *Context, a, d *relation.Relation, s Sink) error {
			_, err := Run(ctx, AlgAuto, InputSpec{}, a, d, s)
			return err
		},
		"StackTree": StackTreeOnTheFly,
		"MPMGJN":    MPMGJNOnTheFly,
		"ADBPlus":   ADBPlusOnTheFly,
	}
}

// runWithDegree evaluates fn over fresh relations on a fresh disk at the
// given intra-engine degree and returns the emitted pairs.
func runWithDegree(t *testing.T, name string, fn joinFunc, b, h, degree int, aCodes, dCodes []pbicode.Code) []Pair {
	t.Helper()
	ctx := newCtx(t, b, h)
	ctx.Parallel = degree
	a := load(t, ctx, "A", aCodes)
	d := load(t, ctx, "D", dCodes)
	var sink PairSink
	if err := fn(ctx, a, d, &sink); err != nil {
		t.Fatalf("%s(parallel=%d): %v", name, degree, err)
	}
	if ctx.Stats.Pairs != int64(len(sink.Pairs)) {
		t.Fatalf("%s(parallel=%d): Stats.Pairs = %d, emitted %d", name, degree, ctx.Stats.Pairs, len(sink.Pairs))
	}
	if got := ctx.Pool.PinnedFrames(); got != 0 {
		t.Fatalf("%s(parallel=%d): leaked %d pins", name, degree, got)
	}
	return sink.Pairs
}

// TestParallelMatchesSerial is the core equivalence property: for every
// algorithm affected by Context.Parallel, the parallel execution emits
// exactly the serial result set (same pairs, same multiplicities) at every
// degree. Inputs are multi-height random code sets so MHCJ actually has
// several per-height units to fan out, and the 24-frame pool keeps VPJ
// partitioning (inputs exceed memory) while allowing up to 8 workers.
// Run with -race this is also the concurrent-pools-over-one-disk test.
func TestParallelMatchesSerial(t *testing.T) {
	const h = 12
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		na, nd := 600+rng.Intn(600), 600+rng.Intn(900)
		aCodes := randCodes(rng, na, h, -1)
		dCodes := randCodes(rng, nd, h, -1)
		for name, fn := range parallelAlgorithms() {
			want := runWithDegree(t, name, fn, 24, h, 0, aCodes, dCodes)
			for _, degree := range []int{1, 2, 8} {
				got := runWithDegree(t, name, fn, 24, h, degree, aCodes, dCodes)
				samePairs(t, fmt.Sprintf("%s(parallel=%d)", name, degree), got, want)
			}
		}
	}
}

// TestParallelDegreeOneIdentical pins the no-drift guarantee: Parallel=1
// must take the exact serial code path, so every join counter and every
// disk counter matches the Parallel=0 run bit for bit.
func TestParallelDegreeOneIdentical(t *testing.T) {
	const h = 12
	rng := rand.New(rand.NewSource(41))
	aCodes := randCodes(rng, 900, h, -1)
	dCodes := randCodes(rng, 1100, h, -1)
	for name, fn := range parallelAlgorithms() {
		run := func(degree int) (Stats, storage.Stats) {
			d := storage.NewMemDisk(256, storage.CostModel{})
			defer d.Close()
			pool := buffer.New(d, 16)
			ctx := &Context{Pool: pool, TreeHeight: h, Stats: &Stats{}, Parallel: degree}
			a := load(t, ctx, "A", aCodes)
			dd := load(t, ctx, "D", dCodes)
			if err := pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
			d.ResetStats()
			if err := fn(ctx, a, dd, &CountSink{}); err != nil {
				t.Fatalf("%s(parallel=%d): %v", name, degree, err)
			}
			return *ctx.Stats, d.Stats()
		}
		serialStats, serialIO := run(0)
		oneStats, oneIO := run(1)
		if oneStats != serialStats {
			t.Errorf("%s: degree-1 stats drifted: %+v vs serial %+v", name, oneStats, serialStats)
		}
		if oneIO != serialIO {
			t.Errorf("%s: degree-1 disk counters drifted: %+v vs serial %+v", name, oneIO, serialIO)
		}
	}
}

// TestRunParallelConcurrency proves the fan-out is real: two tasks
// rendezvous through unbuffered channels, which can only complete when
// both run at the same time on different goroutines.
func TestRunParallelConcurrency(t *testing.T) {
	ctx := newCtx(t, 8, 4)
	ctx.Parallel = 2
	// Unbuffered: the send in task 0 can only complete while task 1 is
	// simultaneously receiving on its own goroutine.
	barrier := make(chan struct{})
	err := ctx.runParallel(2, 2, "t", func(i int) string { return fmt.Sprintf("task=%d", i) },
		func(child *Context, i int) error {
			if i == 0 {
				select {
				case barrier <- struct{}{}:
					return nil
				case <-time.After(10 * time.Second):
					return errors.New("no concurrent peer")
				}
			}
			select {
			case <-barrier:
				return nil
			case <-time.After(10 * time.Second):
				return errors.New("no concurrent peer")
			}
		})
	if err != nil {
		t.Fatalf("runParallel: %v", err)
	}
}

// TestRunParallelMergesDeterministically checks the bookkeeping contract:
// per-task stats merge in task order (Pairs excluded — the parent counting
// sink already saw every pair), one trace root per task attaches in task
// order with the task's detail string, and a real error beats concurrent
// cancellation errors regardless of which task hit it.
func TestRunParallelMergesDeterministically(t *testing.T) {
	ctx := newCtx(t, 12, 4)
	ctx.Parallel = 4
	ctx.Trace = trace.New("join", func() trace.Counters { return trace.Counters{} })
	err := ctx.runParallel(4, 8, "unit", func(i int) string { return fmt.Sprintf("u=%d", i) },
		func(child *Context, i int) error {
			child.Stats.Partitions = int64(i)
			child.Stats.Pairs = 100 // must NOT merge into the parent
			child.Stats.MaxRecursion = i
			if i == 3 {
				child.Stats.MaxRecursion = 9
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ctx.Stats.Partitions, int64(0+1+2+3+4+5+6+7); got != want {
		t.Errorf("Partitions = %d, want %d", got, want)
	}
	if ctx.Stats.Pairs != 0 {
		t.Errorf("worker Pairs leaked into parent: %d", ctx.Stats.Pairs)
	}
	if ctx.Stats.MaxRecursion != 9 {
		t.Errorf("MaxRecursion = %d, want 9", ctx.Stats.MaxRecursion)
	}
	root := ctx.Trace.Finish()
	if len(root.Children) != 8 {
		t.Fatalf("trace roots attached = %d, want 8", len(root.Children))
	}
	for i, sp := range root.Children {
		if sp.Name != "unit" || sp.Detail != fmt.Sprintf("u=%d", i) {
			t.Errorf("span %d = %s[%s], want unit[u=%d]", i, sp.Name, sp.Detail, i)
		}
	}

	// Error selection: task 1 fails for real, the others report
	// cancellations — the real failure must win. A start barrier keeps
	// every task running before any of them returns its error, so the
	// failure flag cannot skip task 1 and make the outcome timing-
	// dependent.
	ctx2 := newCtx(t, 12, 4)
	ctx2.Parallel = 4
	boom := errors.New("boom")
	var started sync.WaitGroup
	started.Add(4)
	err = ctx2.runParallel(4, 4, "unit", func(i int) string { return "" },
		func(child *Context, i int) error {
			started.Done()
			started.Wait()
			if i == 1 {
				return boom
			}
			return ErrCanceled
		})
	if !errors.Is(err, boom) {
		t.Errorf("error = %v, want the real failure to beat cancellations", err)
	}
}

func TestParallelDegreeClamps(t *testing.T) {
	cases := []struct {
		parallel, b, n, want int
	}{
		{0, 100, 10, 1}, // serial by default
		{1, 100, 10, 1}, // explicit serial
		{4, 100, 10, 4}, // plenty of everything
		{8, 100, 3, 3},  // clamped to the unit count
		{8, 12, 100, 4}, // clamped to b/3 worker budgets
		{8, 5, 100, 1},  // budget can't carve two 3-page pools
		{16, 100, 0, 1}, // nothing to fan out
	}
	for _, tc := range cases {
		d := storage.NewMemDisk(256, storage.CostModel{})
		ctx := &Context{Pool: buffer.New(d, tc.b), Parallel: tc.parallel}
		if got := ctx.parallelDegree(tc.n); got != tc.want {
			t.Errorf("parallelDegree(parallel=%d b=%d n=%d) = %d, want %d",
				tc.parallel, tc.b, tc.n, got, tc.want)
		}
		d.Close()
	}
}

// TestParallelCancelMidFanOut cancels the Go context from a disk read hook
// while worker goroutines are mid-join: the fan-out must wind down, report
// ErrCanceled through both error vocabularies, leak no pins, and free
// every temporary page (parent pool residency back to its baseline).
func TestParallelCancelMidFanOut(t *testing.T) {
	const h = 12
	rng := rand.New(rand.NewSource(42))
	aCodes := randCodes(rng, 900, h, -1)
	dCodes := randCodes(rng, 1100, h, -1)
	for name, fn := range parallelAlgorithms() {
		for _, cancelAt := range []int64{0, 4, 40, 200} {
			d := storage.NewMemDisk(256, storage.CostModel{})
			fd := storage.NewFaultDisk(d)
			pool := buffer.New(fd, 512)
			goCtx, cancel := context.WithCancel(context.Background())
			ctx := &Context{Pool: pool, TreeHeight: h, Stats: &Stats{}, Ctx: goCtx, Parallel: 4}
			a, err := relation.FromCodes(pool, "A", aCodes)
			if err != nil {
				t.Fatal(err)
			}
			dd, err := relation.FromCodes(pool, "D", dCodes)
			if err != nil {
				t.Fatal(err)
			}
			if err := pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
			baseline := pool.Resident()
			// The hook fires concurrently from every worker's disk view.
			var reads atomic.Int64
			at := cancelAt
			fd.OnRead = func(storage.PageID) error {
				if reads.Add(1) >= at {
					cancel()
				}
				return nil
			}
			if at == 0 {
				cancel()
			}
			restore := ctx.ArmPool()
			err = fn(ctx, a, dd, &CountSink{})
			restore()
			cancel()
			if err != nil {
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("%s(cancelAt=%d): error %v, want ErrCanceled", name, cancelAt, err)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s(cancelAt=%d): error does not unwrap to context.Canceled", name, cancelAt)
				}
			}
			if got := pool.PinnedFrames(); got != 0 {
				t.Fatalf("%s(cancelAt=%d): leaked %d pins (err=%v)", name, cancelAt, got, err)
			}
			if !indexedAlgorithms[name] {
				if got := pool.Resident(); got != baseline {
					t.Fatalf("%s(cancelAt=%d): resident pages %d, want baseline %d (err=%v)",
						name, cancelAt, got, baseline, err)
				}
			}
			d.Close()
		}
	}
}

// TestParallelFreeTempsOnDiskErrors injects read/write failures while a
// fan-out is running: the injected error must surface (no panic, no hang),
// sibling workers must stop, and every temporary relation — partitions
// built by the parent, run files built inside workers — must be freed.
func TestParallelFreeTempsOnDiskErrors(t *testing.T) {
	const h = 12
	rng := rand.New(rand.NewSource(43))
	aCodes := randCodes(rng, 900, h, -1)
	dCodes := randCodes(rng, 1100, h, -1)
	for name, fn := range parallelAlgorithms() {
		for _, failAt := range []int64{2, 10, 60, 300} {
			d := storage.NewMemDisk(256, storage.CostModel{})
			fd := storage.NewFaultDisk(d)
			pool := buffer.New(fd, 512)
			ctx := &Context{Pool: pool, TreeHeight: h, Stats: &Stats{}, Parallel: 4}
			a, err := relation.FromCodes(pool, "A", aCodes)
			if err != nil {
				t.Fatal(err)
			}
			dd, err := relation.FromCodes(pool, "D", dCodes)
			if err != nil {
				t.Fatal(err)
			}
			if err := pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
			baseline := pool.Resident()
			fd.FailReadAfter = failAt
			fd.FailWriteAfter = failAt
			err = fn(ctx, a, dd, &CountSink{})
			if err != nil && !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("%s(failAt=%d): unexpected error %v", name, failAt, err)
			}
			if got := pool.PinnedFrames(); got != 0 {
				t.Fatalf("%s(failAt=%d): leaked %d pins (err=%v)", name, failAt, got, err)
			}
			if !indexedAlgorithms[name] {
				if got := pool.Resident(); got != baseline {
					t.Fatalf("%s(failAt=%d): resident pages %d, want baseline %d (err=%v)",
						name, failAt, got, baseline, err)
				}
			}
			d.Close()
		}
	}
}
