package core

import (
	"github.com/pbitree/pbitree/internal/extsort"
	"github.com/pbitree/pbitree/internal/relation"
)

// This file implements the sort-merge baselines adapted to PBiTree codes
// (section 3.1): MPMGJN (Zhang et al.'s multi-predicate merge join) and the
// stack-tree joins of Al-Khalifa et al. Inputs must be in document order —
// region Start ascending, End descending on ties (a node precedes its
// leftmost descendant). The *OnTheFly variants sort unsorted inputs first,
// charging the external-sort I/O exactly as the paper's experiments do.

// docLess orders records in document order and reports whether x precedes
// y strictly.
func docLess(x, y relation.Rec) bool {
	return extsort.ByStartEndDesc(x).Less(extsort.ByStartEndDesc(y))
}

// SortByDoc sorts rel into document order with the context's memory
// budget. Baselines use it to sort inputs on the fly. Run generation and
// merge passes are recorded as phases when tracing is on.
func SortByDoc(ctx *Context, rel *relation.Relation, name string) (*relation.Relation, error) {
	return sortWith(ctx, rel, extsort.ByStartEndDesc, name)
}

// sortWith is the context-aware external sort every sort-backed algorithm
// goes through: serial extsort at degree 1, parallel run generation at
// higher degrees, with phase spans either way.
func sortWith(ctx *Context, rel *relation.Relation, key extsort.KeyFunc, name string) (*relation.Relation, error) {
	sp := ctx.Trace.StartDetail("sort", name)
	var out *relation.Relation
	var err error
	if ctx.Parallel > 1 {
		out, err = extsort.SortParallel(ctx.Pool, rel, key, ctx.b(), ctx.tmp(name), ctx.Trace,
			extsort.ParallelOpts{Degree: ctx.Parallel, Interrupt: interruptOf(ctx)})
	} else {
		out, err = extsort.SortTrace(ctx.Pool, rel, key, ctx.b(), ctx.tmp(name), ctx.Trace)
	}
	ctx.Trace.End(sp)
	return out, err
}

// interruptOf returns the cancellation poll for worker pools, nil when the
// context is uncancelable.
func interruptOf(ctx *Context) func() error {
	if ctx.Ctx == nil {
		return nil
	}
	return ctx.Canceled
}

// stack is the ancestor stack shared by the merge joins: a chain of nested
// regions, bottom = outermost. Its depth is bounded by the PBiTree height.
type stack []relation.Rec

func (st *stack) push(r relation.Rec) { *st = append(*st, r) }
func (st *stack) popBelow(start uint64) {
	s := *st
	for len(s) > 0 && s[len(s)-1].Code.End() < start {
		s = s[:len(s)-1]
	}
	*st = s
}

// emitMatches emits (s, d) for every stack entry that properly contains d.
// Every entry satisfies s.Start <= d.Start <= s.End already; the height
// guard selects proper ancestors under closed-region semantics.
func (st stack) emitMatches(d relation.Rec, sink Sink) error {
	hd := d.Code.Height()
	for _, s := range st {
		if s.Code.Height() > hd {
			if err := sink.Emit(s, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// StackTree evaluates the stack-tree-desc join over document-ordered
// inputs: optimal one-pass merge, output ordered by descendant.
func StackTree(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sink = ctx.Wrap(sink)
	sp := ctx.Trace.Start("merge-scan")
	defer ctx.Trace.End(sp)
	as, ds := a.Scan(), d.Scan()
	defer as.Close()
	defer ds.Close()
	var st stack
	hasA, hasD := as.Next(), ds.Next()
	for hasD {
		if hasA && !docLess(ds.Rec(), as.Rec()) {
			// The ancestor-side element starts first (or ties as the
			// ancestor): open its region on the stack.
			ar := as.Rec()
			st.popBelow(ar.Code.Start())
			st.push(ar)
			hasA = as.Next()
			continue
		}
		dr := ds.Rec()
		st.popBelow(dr.Code.Start())
		if err := st.emitMatches(dr, sink); err != nil {
			return err
		}
		hasD = ds.Next()
	}
	if err := as.Err(); err != nil {
		return err
	}
	return ds.Err()
}

// StackTreeOnTheFly sorts both inputs into document order (cost charged)
// and runs StackTree — the paper's STACKTREE baseline for unsorted data.
func StackTreeOnTheFly(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sa, err := SortByDoc(ctx, a, "st.a")
	if err != nil {
		return err
	}
	defer sa.Free() //nolint:errcheck // cleanup
	sd, err := SortByDoc(ctx, d, "st.d")
	if err != nil {
		return err
	}
	defer sd.Free() //nolint:errcheck // cleanup
	return StackTree(ctx, sa, sd, sink)
}

// MPMGJN evaluates the multi-predicate merge join over document-ordered
// inputs: for each ancestor it scans the descendant segment within its
// region, re-reading shared segments for nested ancestors (the rescans the
// stack-tree join was invented to avoid; Stats.Rescans counts the repeat
// record reads).
func MPMGJN(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sink = ctx.Wrap(sink)
	sp := ctx.Trace.Start("merge-scan")
	defer ctx.Trace.End(sp)
	stats := ctx.stats()
	as := a.Scan()
	defer as.Close()
	var mark relation.Pos
	for as.Next() {
		ar := as.Rec()
		ds := d.ScanFrom(mark)
		read := int64(0)
		for ds.Next() {
			dr := ds.Rec()
			read++
			if dr.Code.Start() < ar.Code.Start() {
				// dr can never join later ancestors either (their Starts
				// are >= ar's): advance the shared mark past it.
				mark = ds.Pos()
				read--
				continue
			}
			if dr.Code.Start() > ar.Code.End() {
				read-- // dr itself is not part of ar's segment
				break
			}
			if dr.Code.Height() < ar.Code.Height() {
				if err := sink.Emit(ar, dr); err != nil {
					ds.Close()
					return err
				}
			}
		}
		if err := ds.Err(); err != nil {
			ds.Close()
			return err
		}
		ds.Close()
		stats.Rescans += read
	}
	return as.Err()
}

// MPMGJNOnTheFly sorts both inputs (cost charged) and runs MPMGJN.
func MPMGJNOnTheFly(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sa, err := SortByDoc(ctx, a, "mp.a")
	if err != nil {
		return err
	}
	defer sa.Free() //nolint:errcheck // cleanup
	sd, err := SortByDoc(ctx, d, "mp.d")
	if err != nil {
		return err
	}
	defer sd.Free() //nolint:errcheck // cleanup
	return MPMGJN(ctx, sa, sd, sink)
}

// StackTreeAnc evaluates the stack-tree-anc join over document-ordered
// inputs: same merge as StackTree, but results are delivered ordered by
// ancestor. Pairs whose ancestor is still open are buffered on the stack
// (self lists) and cascade through inherit lists on pops, exactly as in
// Al-Khalifa et al.; buffering is in memory, proportional to the pending
// result size.
func StackTreeAnc(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sink = ctx.Wrap(sink)
	sp := ctx.Trace.Start("merge-scan")
	defer ctx.Trace.End(sp)
	type entry struct {
		rec     relation.Rec
		self    []Pair // (rec, d) results, in d order
		inherit []Pair // results of popped descendants, already ordered
	}
	var st []*entry
	flush := func(e *entry) error {
		for _, p := range e.self {
			if err := sink.Emit(relation.Rec{Code: p.A}, relation.Rec{Code: p.D}); err != nil {
				return err
			}
		}
		for _, p := range e.inherit {
			if err := sink.Emit(relation.Rec{Code: p.A}, relation.Rec{Code: p.D}); err != nil {
				return err
			}
		}
		return nil
	}
	pop := func() error {
		top := st[len(st)-1]
		st = st[:len(st)-1]
		if len(st) == 0 {
			return flush(top)
		}
		parent := st[len(st)-1]
		parent.inherit = append(parent.inherit, top.self...)
		parent.inherit = append(parent.inherit, top.inherit...)
		return nil
	}
	popBelow := func(start uint64) error {
		for len(st) > 0 && st[len(st)-1].rec.Code.End() < start {
			if err := pop(); err != nil {
				return err
			}
		}
		return nil
	}
	as, ds := a.Scan(), d.Scan()
	defer as.Close()
	defer ds.Close()
	hasA, hasD := as.Next(), ds.Next()
	for hasD {
		if hasA && !docLess(ds.Rec(), as.Rec()) {
			ar := as.Rec()
			if err := popBelow(ar.Code.Start()); err != nil {
				return err
			}
			st = append(st, &entry{rec: ar})
			hasA = as.Next()
			continue
		}
		dr := ds.Rec()
		if err := popBelow(dr.Code.Start()); err != nil {
			return err
		}
		hd := dr.Code.Height()
		for _, e := range st {
			if e.rec.Code.Height() > hd {
				e.self = append(e.self, Pair{A: e.rec.Code, D: dr.Code})
			}
		}
		hasD = ds.Next()
	}
	if err := as.Err(); err != nil {
		return err
	}
	if err := ds.Err(); err != nil {
		return err
	}
	for len(st) > 0 {
		if err := pop(); err != nil {
			return err
		}
	}
	return nil
}
