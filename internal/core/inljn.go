package core

import (
	"github.com/pbitree/pbitree/internal/btree"
	"github.com/pbitree/pbitree/internal/itree"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/pbicode"
)

// This file implements the index nested loop join of section 3.1. The
// smaller set becomes the outer relation; the index on the inner side is
// built on the fly when absent (the paper's experimental setting), with
// the sort and build I/O charged through the shared pool:
//
//   - inner = D: a B+-tree on D.Start; each ancestor probes the range
//     [a.Start, a.End].
//   - inner = A: a disk interval tree on A's regions (a B+-tree handles
//     this direction poorly — the paper proposes the interval tree); each
//     descendant stabs with d.Start.

// btreeSource adapts a document-ordered relation scan to a bulk-load
// source keyed by region Start with the code as value.
type btreeSource struct {
	s *relation.Scanner
}

func (b btreeSource) Next() bool  { return b.s.Next() }
func (b btreeSource) Key() uint64 { return b.s.Rec().Code.Start() }
func (b btreeSource) Val() uint64 { return uint64(b.s.Rec().Code) }
func (b btreeSource) Err() error  { return b.s.Err() }

// BuildStartIndex sorts rel into document order and bulk-loads a B+-tree
// on region Start (value = code). It returns the tree; the sorted
// intermediate is freed.
func BuildStartIndex(ctx *Context, rel *relation.Relation, name string) (*btree.Tree, error) {
	sp := ctx.Trace.StartDetail("index-build", name)
	defer ctx.Trace.End(sp)
	sorted, err := SortByDoc(ctx, rel, name)
	if err != nil {
		return nil, err
	}
	defer sorted.Free() //nolint:errcheck // cleanup
	s := sorted.Scan()
	defer s.Close()
	return btree.BulkLoad(ctx.Pool, btreeSource{s: s}, 1.0)
}

// BuildIntervalIndex builds the disk interval tree over rel's regions. The
// input is scanned once (cost charged); construction state is in memory,
// like a bulk load (see DESIGN.md's substitution notes).
func BuildIntervalIndex(ctx *Context, rel *relation.Relation) (*itree.Tree, error) {
	sp := ctx.Trace.StartDetail("index-build", "itree")
	defer ctx.Trace.End(sp)
	recs, err := rel.ReadAll()
	if err != nil {
		return nil, err
	}
	return itree.Build(ctx.Pool, recs)
}

// INLJN evaluates the index nested loop join, building the inner index on
// the fly. The probe direction follows the paper's §3.1 heuristic,
// minimizing ‖outer‖ + |outer|·O(log |inner|) across the two choices.
func INLJN(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sink = ctx.Wrap(sink)
	if inlCost(a, d) <= inlCost(d, a) {
		idx, err := BuildStartIndex(ctx, d, "inl.d")
		if err != nil {
			return err
		}
		return INLJNProbeDescendants(ctx, a, idx, sink)
	}
	idx, err := BuildIntervalIndex(ctx, a)
	if err != nil {
		return err
	}
	return INLJNProbeAncestors(ctx, idx, d, sink)
}

// inlCost estimates the paper's ‖outer‖ + |outer|·O(log |inner|) cost of
// probing inner with outer.
func inlCost(outer, inner *relation.Relation) int64 {
	logInner := int64(1)
	for n := inner.NumRecords(); n > 1; n /= 2 {
		logInner++
	}
	return outer.NumPages() + outer.NumRecords()*logInner/8
}

// INLJNProbeDescendants joins with an existing B+-tree on D.Start: for
// each ancestor, the descendants are the entries with Start in
// [a.Start, a.End] and lower height.
func INLJNProbeDescendants(ctx *Context, a *relation.Relation, dIdx *btree.Tree, sink Sink) error {
	sp := ctx.Trace.StartDetail("probe", "index=D")
	defer ctx.Trace.End(sp)
	stats := ctx.stats()
	s := a.Scan()
	defer s.Close()
	for s.Next() {
		ar := s.Rec()
		ha := ar.Code.Height()
		stats.IndexProbes++
		err := dIdx.Range(ar.Code.Start(), ar.Code.End(), func(key, val uint64) error {
			dc := pbicode.Code(val)
			if dc.Height() < ha {
				return sink.Emit(ar, relation.Rec{Code: dc})
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return s.Err()
}

// INLJNProbeAncestors joins with an existing interval tree on A's regions:
// each descendant stabs with its Start; results above its height are its
// ancestors.
func INLJNProbeAncestors(ctx *Context, aIdx *itree.Tree, d *relation.Relation, sink Sink) error {
	sp := ctx.Trace.StartDetail("probe", "index=A")
	defer ctx.Trace.End(sp)
	stats := ctx.stats()
	s := d.Scan()
	defer s.Close()
	for s.Next() {
		dr := s.Rec()
		hd := dr.Code.Height()
		stats.IndexProbes++
		err := aIdx.Stab(dr.Code.Start(), func(ar relation.Rec) error {
			if ar.Code.Height() > hd {
				return sink.Emit(ar, dr)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return s.Err()
}
