package core

import (
	"fmt"

	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/pbicode"
)

// This file implements the equijoin engine behind the horizontal
// partitioning algorithms: A ⋈ D on A.Code = F(D.Code, h), evaluated as an
// in-memory hash join when a side fits the memory budget and as a Grace
// hash join (partition both sides by a shared hash of the join key, then
// join partition pairs) otherwise — the "highly optimized equijoin
// evaluation techniques" the paper's section 3.2 leans on, with the
// textbook 3(‖A‖+‖D‖) I/O when one partitioning pass suffices.
//
// The ancestor side may be transformed on the fly by a prep function; the
// rollup technique uses this to roll ancestors up to the target height
// during the very scan that feeds the join, so the "simple strategy" of
// the paper costs no extra materialization pass.

// splitmix64 is the 64-bit finalizer used to hash join keys; a salt
// decorrelates recursive partitioning rounds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// aPrep transforms ancestor-side records as they are scanned (identity
// when nil). Rollup sets Code to the rolled-up code and Aux to the
// original code.
type aPrep func(relation.Rec) relation.Rec

// hashTable is a chained hash table over an arena: one map entry per
// distinct key plus two flat slices, instead of a []Rec per key. In-memory
// join builds over ~100k records allocate a handful of slices rather than
// tens of thousands of buckets.
type hashTable struct {
	head map[pbicode.Code]int32 // key -> 1-based index of the newest entry
	recs []relation.Rec
	next []int32 // 1-based index of the previous entry with the same key
}

func newHashTable(capacity int64) *hashTable {
	if capacity < 0 || capacity > 1<<30 {
		capacity = 0
	}
	return &hashTable{
		head: make(map[pbicode.Code]int32, capacity),
		recs: make([]relation.Rec, 0, capacity),
		next: make([]int32, 0, capacity),
	}
}

// add stores r under key.
func (t *hashTable) add(key pbicode.Code, r relation.Rec) {
	t.recs = append(t.recs, r)
	t.next = append(t.next, t.head[key])
	t.head[key] = int32(len(t.recs))
}

// each calls fn for every record stored under key, newest first.
func (t *hashTable) each(key pbicode.Code, fn func(relation.Rec) error) error {
	for i := t.head[key]; i != 0; i = t.next[i-1] {
		if err := fn(t.recs[i-1]); err != nil {
			return err
		}
	}
	return nil
}

// len returns the number of stored records.
func (t *hashTable) len() int { return len(t.recs) }

// dKey returns the equijoin key of a descendant record for ancestor height
// h, and whether the record can participate at all (it must lie below h).
func dKey(d relation.Rec, h int) (pbicode.Code, bool) {
	if d.Code.Height() >= h {
		return 0, false
	}
	return pbicode.F(d.Code, h), true
}

// equiJoin evaluates A ⋈_{prep(A).Code = F(D.Code, h)} D into sink. All
// useful matches have ancestor-side height exactly h (callers arrange
// this: SHCJ's A is single-height; rollup preps codes to height h).
// Emission passes the prepped ancestor record through, so rollup callers
// can post-filter via Aux.
func equiJoin(ctx *Context, a, d *relation.Relation, h int, prep aPrep, sink Sink, depth int) error {
	memCap := ctx.memRecs(ctx.b() - 2)
	switch {
	case a.NumRecords() <= int64(memCap):
		return hashJoinBuildA(ctx, a, d, h, prep, sink)
	case d.NumRecords() <= int64(memCap):
		return hashJoinBuildD(ctx, a, d, h, prep, sink)
	case depth >= 8:
		// Pathological skew (e.g. one giant duplicate key): stop
		// partitioning and block-join.
		return blockEquiJoin(ctx, a, d, h, prep, sink)
	default:
		return graceJoin(ctx, a, d, h, prep, sink, depth)
	}
}

// hashJoinBuildA builds the table on the ancestor side and streams D.
func hashJoinBuildA(ctx *Context, a, d *relation.Relation, h int, prep aPrep, sink Sink) error {
	sp := ctx.Trace.StartDetail("hash-join", "build=A")
	defer ctx.Trace.End(sp)
	if ctx.batch() {
		return hashJoinBuildABatch(ctx, a, d, h, prep, sink)
	}
	table := newHashTable(a.NumRecords())
	as := a.Scan()
	defer as.Close()
	for as.Next() {
		r := as.Rec()
		if prep != nil {
			r = prep(r)
		}
		table.add(r.Code, r)
	}
	if err := as.Err(); err != nil {
		return err
	}
	ds := d.Scan()
	defer ds.Close()
	for ds.Next() {
		dr := ds.Rec()
		key, ok := dKey(dr, h)
		if !ok {
			continue
		}
		if err := table.each(key, func(ar relation.Rec) error {
			return sink.Emit(ar, dr)
		}); err != nil {
			return err
		}
	}
	return ds.Err()
}

// hashJoinBuildD builds the table on the descendant side (keyed by the
// derived F code) and streams A.
func hashJoinBuildD(ctx *Context, a, d *relation.Relation, h int, prep aPrep, sink Sink) error {
	sp := ctx.Trace.StartDetail("hash-join", "build=D")
	defer ctx.Trace.End(sp)
	if ctx.batch() {
		return hashJoinBuildDBatch(ctx, a, d, h, prep, sink)
	}
	table := newHashTable(d.NumRecords())
	ds := d.Scan()
	defer ds.Close()
	for ds.Next() {
		dr := ds.Rec()
		if key, ok := dKey(dr, h); ok {
			table.add(key, dr)
		}
	}
	if err := ds.Err(); err != nil {
		return err
	}
	as := a.Scan()
	defer as.Close()
	for as.Next() {
		ar := as.Rec()
		if prep != nil {
			ar = prep(ar)
		}
		if err := table.each(ar.Code, func(dr relation.Rec) error {
			return sink.Emit(ar, dr)
		}); err != nil {
			return err
		}
	}
	return as.Err()
}

// graceJoin partitions both inputs by a shared hash of the join key and
// joins partition pairs, recursing on still-oversized pairs. Ancestor
// partitions hold prepped records, so recursion passes a nil prep.
func graceJoin(ctx *Context, a, d *relation.Relation, h int, prep aPrep, sink Sink, depth int) error {
	b := ctx.b()
	minPages := a.NumPages()
	if p := d.NumPages(); p < minPages {
		minPages = p
	}
	k := int((minPages + int64(b-3)) / int64(b-2))
	if k < 2 {
		k = 2
	}
	if k > b-1 {
		k = b - 1
	}
	salt := uint64(depth+1) * 0x9e3779b97f4a7c15
	if depth+1 > ctx.stats().MaxRecursion {
		ctx.stats().MaxRecursion = depth + 1
	}

	psp := ctx.Trace.StartDetail("grace-partition", fmt.Sprintf("k=%d depth=%d", k, depth))
	var aParts []*relation.Relation
	var err error
	if ctx.batch() {
		aParts, err = hashPartitionBatchA(ctx, a, k, "ha", prep, salt)
	} else {
		aParts, err = hashPartition(ctx, a, k, "ha", func(r relation.Rec) (relation.Rec, uint64, bool) {
			if prep != nil {
				r = prep(r)
			}
			return r, uint64(r.Code), true
		}, salt)
	}
	if err != nil {
		ctx.Trace.End(psp)
		return err
	}
	var dParts []*relation.Relation
	if ctx.batch() {
		dParts, err = hashPartitionBatchD(ctx, d, k, "hd", h, salt)
	} else {
		dParts, err = hashPartition(ctx, d, k, "hd", func(r relation.Rec) (relation.Rec, uint64, bool) {
			key, ok := dKey(r, h)
			return r, uint64(key), ok
		}, salt)
	}
	ctx.Trace.End(psp)
	if err != nil {
		freeAll(aParts)
		return err
	}
	defer freeAll(aParts)
	defer freeAll(dParts)
	for i := 0; i < k; i++ {
		if aParts[i].NumRecords() == 0 || dParts[i].NumRecords() == 0 {
			continue
		}
		if aParts[i].NumRecords() == a.NumRecords() && dParts[i].NumRecords() == d.NumRecords() {
			// The hash achieved nothing: every record shares one join
			// key (an extreme rollup). No salt will split it — block-join
			// immediately instead of burning recursion passes.
			if err := blockEquiJoin(ctx, aParts[i], dParts[i], h, nil, sink); err != nil {
				return err
			}
		} else if err := equiJoin(ctx, aParts[i], dParts[i], h, nil, sink, depth+1); err != nil {
			return err
		}
		if err := aParts[i].Free(); err != nil {
			return err
		}
		if err := dParts[i].Free(); err != nil {
			return err
		}
	}
	return nil
}

// hashPartition splits rel into k partition relations by hash(key) and
// returns them. The prep function maps each scanned record to the record
// to store, its hash key, and whether to keep it at all. Appenders are
// opened lazily so empty partitions cost nothing.
func hashPartition(ctx *Context, rel *relation.Relation, k int, kind string, prep func(relation.Rec) (relation.Rec, uint64, bool), salt uint64) ([]*relation.Relation, error) {
	parts := make([]*relation.Relation, k)
	apps := make([]*relation.Appender, k)
	for i := range parts {
		parts[i] = relation.New(ctx.Pool, ctx.tmp(kind))
		parts[i].SetCompress(rel.Compressed())
	}
	closeApps := func() error {
		var first error
		for _, ap := range apps {
			if ap != nil {
				if err := ap.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		return first
	}
	// fail cleans up on any error: the caller never sees the partitions, so
	// they must be freed here or they leak.
	fail := func(err error) ([]*relation.Relation, error) {
		closeApps() //nolint:errcheck // first error wins
		freeAll(parts)
		return nil, err
	}
	s := rel.Scan()
	defer s.Close()
	for s.Next() {
		r, kv, ok := prep(s.Rec())
		if !ok {
			continue
		}
		i := int(splitmix64(kv^salt) % uint64(k))
		if apps[i] == nil {
			apps[i] = parts[i].NewAppender()
			ctx.stats().Partitions++
		}
		if err := apps[i].Append(r); err != nil {
			return fail(err)
		}
	}
	if err := s.Err(); err != nil {
		return fail(err)
	}
	if err := closeApps(); err != nil {
		freeAll(parts)
		return nil, err
	}
	return parts, nil
}

// freeAll releases partition relations, ignoring errors (cleanup path).
func freeAll(parts []*relation.Relation) {
	for _, p := range parts {
		if p != nil {
			p.Free() //nolint:errcheck // best-effort cleanup
		}
	}
}

// blockEquiJoin is the terminal fallback: hash chunks of A in memory and
// rescan D per chunk.
func blockEquiJoin(ctx *Context, a, d *relation.Relation, h int, prep aPrep, sink Sink) error {
	sp := ctx.Trace.Start("block-join")
	defer ctx.Trace.End(sp)
	if ctx.batch() {
		return blockEquiJoinBatch(ctx, a, d, h, prep, sink)
	}
	chunkCap := ctx.memRecs(ctx.b() - 2)
	if chunkCap < 1 {
		chunkCap = 1
	}
	table := newHashTable(int64(chunkCap))
	join := func() error {
		if table.len() == 0 {
			return nil
		}
		ds := d.Scan()
		defer ds.Close()
		for ds.Next() {
			dr := ds.Rec()
			key, ok := dKey(dr, h)
			if !ok {
				continue
			}
			if err := table.each(key, func(ar relation.Rec) error {
				return sink.Emit(ar, dr)
			}); err != nil {
				return err
			}
		}
		return ds.Err()
	}
	as := a.Scan()
	defer as.Close()
	for as.Next() {
		r := as.Rec()
		if prep != nil {
			r = prep(r)
		}
		table.add(r.Code, r)
		if table.len() == chunkCap {
			if err := join(); err != nil {
				return err
			}
			table = newHashTable(int64(chunkCap))
		}
	}
	if err := as.Err(); err != nil {
		return err
	}
	return join()
}
