package core

import (
	"fmt"

	"github.com/pbitree/pbitree/internal/relation"
)

// This file implements the paper's containment query processing framework
// (section 3.5, Table 1): given what is known about the inputs — sorted?
// indexed? — choose the algorithm. The table's bottom-right cell, inputs
// neither sorted nor indexed, is where the paper's new partitioning
// algorithms win; everything else routes to the adapted classics.

// Algorithm names a containment join algorithm of the framework.
type Algorithm int

// The framework's algorithms.
const (
	AlgAuto Algorithm = iota // let the framework choose (Table 1)
	AlgNestedLoop
	AlgSHCJ // requires a single-height ancestor set
	AlgMHCJ
	AlgMHCJRollup
	AlgVPJ
	AlgINLJN
	AlgStackTree // sorts on the fly when inputs are unsorted
	AlgMPMGJN
	AlgADBPlus
	AlgStackTreeAnc
)

// String returns the conventional name used in the paper.
func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "AUTO"
	case AlgNestedLoop:
		return "NLJ"
	case AlgSHCJ:
		return "SHCJ"
	case AlgMHCJ:
		return "MHCJ"
	case AlgMHCJRollup:
		return "MHCJ+Rollup"
	case AlgVPJ:
		return "VPJ"
	case AlgINLJN:
		return "INLJN"
	case AlgStackTree:
		return "STACKTREE"
	case AlgMPMGJN:
		return "MPMGJN"
	case AlgADBPlus:
		return "ADB+"
	case AlgStackTreeAnc:
		return "STACKTREE-ANC"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// InputSpec describes what the optimizer knows about the join inputs.
type InputSpec struct {
	// SortedA / SortedD: the inputs are already in document order.
	SortedA, SortedD bool
	// IndexedA / IndexedD: persistent Start indexes exist on the inputs.
	IndexedA, IndexedD bool
	// SingleHeightA: all ancestor elements share one PBiTree height.
	SingleHeightA bool
}

// Choose implements Table 1 of the paper: indexes without sort order →
// index nested loop; sort order without indexes → stack-tree; both →
// ADB+; neither → the partitioning algorithms (SHCJ when the ancestor set
// is single-height, otherwise MHCJ+Rollup or VPJ — VPJ when the tree
// height is known and neither input fits memory, since it adapts to skew
// without false hits; rollup otherwise).
func Choose(ctx *Context, spec InputSpec, a, d *relation.Relation) Algorithm {
	sorted := spec.SortedA && spec.SortedD
	indexed := spec.IndexedA && spec.IndexedD
	switch {
	case sorted && indexed:
		return AlgADBPlus
	case sorted:
		return AlgStackTree
	case indexed:
		return AlgINLJN
	}
	if spec.SingleHeightA {
		return AlgSHCJ
	}
	minPages := a.NumPages()
	if p := d.NumPages(); p < minPages {
		minPages = p
	}
	if ctx.TreeHeight > 0 && minPages > int64(ctx.b()-2) {
		return AlgVPJ
	}
	return AlgMHCJRollup
}

// Run executes the chosen algorithm (resolving AlgAuto through Choose) and
// returns the algorithm that actually ran.
func Run(ctx *Context, alg Algorithm, spec InputSpec, a, d *relation.Relation, sink Sink) (Algorithm, error) {
	// Arm the buffer pool with the context's cancellation check for the
	// duration of the execution; every algorithm below becomes cancelable
	// at page granularity without further plumbing.
	defer ctx.ArmPool()()
	if alg == AlgAuto {
		alg = Choose(ctx, spec, a, d)
	}
	switch alg {
	case AlgNestedLoop:
		return alg, NestedLoop(ctx, a, d, sink)
	case AlgSHCJ:
		return alg, SHCJAuto(ctx, a, d, sink)
	case AlgMHCJ:
		return alg, MHCJ(ctx, a, d, sink)
	case AlgMHCJRollup:
		return alg, MHCJRollup(ctx, a, d, 0, sink)
	case AlgVPJ:
		return alg, VPJ(ctx, a, d, sink)
	case AlgINLJN:
		return alg, INLJN(ctx, a, d, sink)
	case AlgStackTree:
		if spec.SortedA && spec.SortedD {
			return alg, StackTree(ctx, a, d, sink)
		}
		return alg, StackTreeOnTheFly(ctx, a, d, sink)
	case AlgMPMGJN:
		if spec.SortedA && spec.SortedD {
			return alg, MPMGJN(ctx, a, d, sink)
		}
		return alg, MPMGJNOnTheFly(ctx, a, d, sink)
	case AlgADBPlus:
		return alg, ADBPlusOnTheFly(ctx, a, d, sink)
	case AlgStackTreeAnc:
		if spec.SortedA && spec.SortedD {
			return alg, StackTreeAnc(ctx, a, d, sink)
		}
		sa, err := SortByDoc(ctx, a, "sta.a")
		if err != nil {
			return alg, err
		}
		defer sa.Free() //nolint:errcheck // cleanup
		sd, err := SortByDoc(ctx, d, "sta.d")
		if err != nil {
			return alg, err
		}
		defer sd.Free() //nolint:errcheck // cleanup
		return alg, StackTreeAnc(ctx, sa, sd, sink)
	default:
		return alg, fmt.Errorf("core: unknown algorithm %v", alg)
	}
}
