package core

import (
	"fmt"
	"math/bits"

	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/pbicode"
)

// This file implements the horizontal partitioning algorithms of section
// 3.2: SHCJ (Algorithm 2), MHCJ (Algorithm 3) and MHCJ+Rollup (Algorithm 4).
// They turn the containment θ-join into equijoins on F(D.Code, h) and
// require neither sorted inputs nor indexes.

// SHCJ evaluates the single-height containment join (Algorithm 2): all
// records of a must be at PBiTree height h; the join becomes the equijoin
// A ⋈_{A.Code = F(D.Code, h)} D.
func SHCJ(ctx *Context, a, d *relation.Relation, h int, sink Sink) error {
	if h <= 0 {
		return fmt.Errorf("core: SHCJ needs the ancestor height, got %d", h)
	}
	return equiJoin(ctx, a, d, h, nil, ctx.Wrap(sink), 0)
}

// SHCJAuto runs SHCJ after reading the (single) ancestor height from the
// first record of a. The caller guarantees a is single-height; an empty a
// joins to nothing.
func SHCJAuto(ctx *Context, a, d *relation.Relation, sink Sink) error {
	s := a.Scan()
	if !s.Next() {
		err := s.Err()
		s.Close()
		return err
	}
	h := s.Rec().Code.Height()
	s.Close()
	return SHCJ(ctx, a, d, h, sink)
}

// MHCJ evaluates the multiple-height containment join (Algorithm 3): it
// splits a into per-height partition files in one scan, then runs SHCJ of
// each partition against d. The per-partition results are disjoint, so
// they stream straight to sink.
func MHCJ(ctx *Context, a, d *relation.Relation, sink Sink) error {
	return mhcj(ctx, a, d, ctx.Wrap(sink))
}

func mhcj(ctx *Context, a, d *relation.Relation, sink Sink) error {
	psp := ctx.Trace.Start("partition")
	var parts map[int]*relation.Relation
	var heights []int
	var err error
	if ctx.batch() {
		parts, heights, err = partitionByHeightBatch(ctx, a)
	} else {
		parts, heights, err = partitionByHeight(ctx, a)
	}
	if psp != nil {
		psp.Detail = fmt.Sprintf("heights=%d", len(heights))
	}
	ctx.Trace.End(psp)
	if err != nil {
		return err
	}
	defer func() {
		for _, p := range parts {
			if p != nil {
				p.Free() //nolint:errcheck // cleanup
			}
		}
	}()
	// The per-height equijoins share no state (heights partition A, and a
	// pair's height is its ancestor's height), so with a parallel degree
	// they fan out across worker pools, emitting through one serialized
	// sink into the parent's chain. The deferred free above covers every
	// partition regardless of which worker joined it.
	if degree := ctx.parallelDegree(len(heights)); degree > 1 {
		shared := &lockedSink{sink: sink}
		return ctx.runParallel(degree, len(heights), "equijoin",
			func(i int) string { return fmt.Sprintf("h=%d", heights[i]) },
			func(child *Context, i int) error {
				h := heights[i]
				return equiJoin(child,
					parts[h].WithPool(child.Pool), d.WithPool(child.Pool),
					h, nil, child.Wrap(shared), 0)
			})
	}
	for _, h := range heights {
		sp := ctx.Trace.StartDetail("equijoin", fmt.Sprintf("h=%d", h))
		err := equiJoin(ctx, parts[h], d, h, nil, sink, 0)
		ctx.Trace.End(sp)
		if err != nil {
			return err
		}
		if err := parts[h].Free(); err != nil {
			return err
		}
		parts[h] = nil
	}
	return nil
}

// partitionByHeight splits rel into one relation per distinct record
// height, opened lazily during a single scan. Each partition holds one
// output frame, so when the distinct heights exceed the frame budget the
// scan runs in waves — up to b-2 new heights per pass, extra passes
// charged like any other read (only relevant for tiny pools; the paper's
// experiments keep one frame per height). Returns the partitions indexed
// by height plus the heights present in ascending order.
func partitionByHeight(ctx *Context, rel *relation.Relation) (map[int]*relation.Relation, []int, error) {
	parts := make(map[int]*relation.Relation)
	done := make(map[int]bool)
	// On error, partitions created so far would otherwise leak: the caller
	// only sees (and frees) a successfully returned map.
	freeParts := func() {
		for _, p := range parts {
			p.Free() //nolint:errcheck // cleanup after earlier error
		}
	}
	for {
		apps := make(map[int]*relation.Appender)
		closeApps := func() error {
			var first error
			for _, ap := range apps {
				if err := ap.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		}
		deferred := false
		s := rel.Scan()
		for s.Next() {
			r := s.Rec()
			h := r.Code.Height()
			if done[h] {
				continue
			}
			ap, ok := apps[h]
			if !ok {
				if len(apps)+2 > ctx.b() {
					deferred = true // another wave picks this height up
					continue
				}
				parts[h] = relation.New(ctx.Pool, ctx.tmp(fmt.Sprintf("mhcj.h%d", h)))
				parts[h].SetCompress(rel.Compressed())
				ap = parts[h].NewAppender()
				apps[h] = ap
				ctx.stats().Partitions++
			}
			if err := ap.Append(r); err != nil {
				s.Close()
				closeApps() //nolint:errcheck // first error wins
				freeParts()
				return nil, nil, err
			}
		}
		s.Close()
		if err := s.Err(); err != nil {
			closeApps() //nolint:errcheck // first error wins
			freeParts()
			return nil, nil, err
		}
		if err := closeApps(); err != nil {
			freeParts()
			return nil, nil, err
		}
		for h := range apps {
			done[h] = true
		}
		if !deferred {
			break
		}
	}
	heights := make([]int, 0, len(parts))
	for h := range parts {
		heights = append(heights, h)
	}
	// Ascending heights; order does not affect the result set.
	for i := 1; i < len(heights); i++ {
		for j := i; j > 0 && heights[j] < heights[j-1]; j-- {
			heights[j], heights[j-1] = heights[j-1], heights[j]
		}
	}
	return parts, heights, nil
}

// verifySink post-filters rollup matches: the rolled ancestor record
// carries the original code in Aux; only pairs where the original node is
// a proper ancestor survive (Algorithm 4's pipelined check). False hits
// are counted for Table 2(f).
type verifySink struct {
	sink  Sink
	stats *Stats
}

func (s verifySink) Emit(a, d relation.Rec) error {
	orig := pbicode.Code(a.Aux)
	if !pbicode.IsAncestor(orig, d.Code) {
		s.stats.FalseHits++
		return nil
	}
	return s.sink.Emit(relation.Rec{Code: orig, Aux: a.Aux}, d)
}

// rollPrep returns the on-the-fly rollup transform for target height h:
// records below h map to their height-h ancestor, Aux keeps the original
// code for verification. Records at or above h pass through (with Aux set
// to their own code so the verification filter is uniform).
func rollPrep(h int) aPrep {
	return func(r relation.Rec) relation.Rec {
		out := relation.Rec{Code: r.Code, Aux: uint64(r.Code)}
		if r.Code.Height() < h {
			out.Code = pbicode.F(r.Code, h)
		}
		return out
	}
}

// MHCJRollup evaluates MHCJ with the rollup technique (Algorithm 4): every
// ancestor below the target height h is replaced by its ancestor at h
// (keeping the original code for the pipelined verification filter), which
// collapses the horizontal partitions below h into one. The equijoin then
// over-matches and the filter drops false hits.
//
// targetH <= 0 picks the paper's "simple strategy": roll everything up to
// the highest ancestor height, leaving a single SHCJ whose rollup happens
// on the fly during the join's own scan of a — the 3(‖A‖+‖D‖) case. The
// target comes from ctx.MaxAncestorHeight when set (catalog statistics);
// otherwise a pre-scan discovers it at the cost of one read of a.
func MHCJRollup(ctx *Context, a, d *relation.Relation, targetH int, sink Sink) error {
	return mhcjRollup(ctx, a, d, targetH, ctx.Wrap(sink))
}

// mhcjRollup is MHCJRollup against an already-wrapped sink, so that
// composite algorithms (VPJ's fallbacks) do not double-count pairs.
func mhcjRollup(ctx *Context, a, d *relation.Relation, targetH int, sink Sink) error {
	knownMax := ctx.MaxAncestorHeight
	if targetH <= 0 || knownMax == 0 {
		if knownMax == 0 {
			hsp := ctx.Trace.Start("height-scan")
			var hist map[int]int64
			var err error
			if ctx.batch() {
				hist, err = heightHistogramBatch(a)
			} else {
				hist, err = HeightHistogram(a)
			}
			ctx.Trace.End(hsp)
			if err != nil {
				return err
			}
			knownMax = maxHeight(hist)
			if knownMax < 0 { // empty ancestor set
				return nil
			}
			if targetH <= 0 {
				// Rolling to the maximum height is the paper's simple
				// strategy, but a single near-root outlier then collapses
				// every ancestor onto one join key and the equijoin
				// degenerates toward a cross product. Target the 99th
				// height percentile instead: concentrated sets (tag sets
				// span a few heights) still roll to their top, while
				// outliers keep their own exact partitions.
				targetH = quantileHeight(hist, 0.99)
			}
		}
		if targetH <= 0 {
			targetH = knownMax // catalog value, trusted concentrated
		}
	}
	vs := verifySink{sink: sink, stats: ctx.stats()}
	if targetH >= knownMax {
		// Simple strategy: everything rolls to one height; a single
		// equijoin with on-the-fly rollup.
		sp := ctx.Trace.StartDetail("equijoin", fmt.Sprintf("rollup h=%d", targetH))
		err := equiJoin(ctx, a, d, targetH, rollPrep(targetH), vs, 0)
		ctx.Trace.End(sp)
		return err
	}
	// General case: heights above targetH survive the rollup. Split the
	// scan: records at or below targetH roll into one equijoin input;
	// the (few) higher records go to a side file joined in a single
	// multi-height pass over D.
	ssp := ctx.Trace.StartDetail("rollup-split", fmt.Sprintf("h=%d", targetH))
	rolled := relation.New(ctx.Pool, ctx.tmp("rollup"))
	high := relation.New(ctx.Pool, ctx.tmp("rollup.high"))
	rolled.SetCompress(a.Compressed())
	high.SetCompress(a.Compressed())
	// Freed on every exit, including split-scan errors below; the error
	// paths close both appenders first so Free can discard the tail pages.
	defer rolled.Free() //nolint:errcheck // cleanup
	defer high.Free()   //nolint:errcheck // cleanup
	rApp, hApp := rolled.NewAppender(), high.NewAppender()
	if err := rollupSplit(ctx, a, targetH, rApp, hApp); err != nil {
		rApp.Close() //nolint:errcheck // first error wins
		hApp.Close() //nolint:errcheck // first error wins
		return err
	}
	errR, errH := rApp.Close(), hApp.Close()
	if errR != nil {
		return errR
	}
	if errH != nil {
		return errH
	}
	ctx.Trace.End(ssp)
	if rolled.NumRecords() > 0 {
		sp := ctx.Trace.StartDetail("equijoin", fmt.Sprintf("rollup h=%d", targetH))
		err := equiJoin(ctx, rolled, d, targetH, nil, vs, 0)
		ctx.Trace.End(sp)
		if err != nil {
			return err
		}
	}
	if high.NumRecords() == 0 {
		return nil
	}
	if high.NumRecords() <= int64(ctx.memRecs(ctx.b()-2)) {
		sp := ctx.Trace.Start("multi-probe")
		err := multiHeightProbeJoin(ctx, high, d, sink)
		ctx.Trace.End(sp)
		return err
	}
	// A heavy above-target tail (the target was a quantile, so this means
	// an extreme distribution): per-height equijoins as in plain MHCJ.
	return mhcj(ctx, high, d, vs)
}

// rollupSplit scans a once, routing records above targetH (with Aux set
// to their own code) to hApp and everything else, rolled up, to rApp. The
// batch path derives heights from slab TrailingZeros and rolls up with
// the branch-free F constants; the serial path is the reference loop.
func rollupSplit(ctx *Context, a *relation.Relation, targetH int, rApp, hApp *relation.Appender) error {
	if ctx.batch() {
		mask := ^uint64(0) << (uint(targetH) + 1)
		bit := uint64(1) << uint(targetH)
		s := a.BatchScan()
		for s.Next() {
			// Aux of the input is not read: rollPrep (and this loop) set the
			// output Aux to the original code for the verification filter.
			for _, c := range s.Codes() {
				var err error
				if bits.TrailingZeros64(c) > targetH {
					err = hApp.Append(relation.Rec{Code: pbicode.Code(c), Aux: c})
				} else {
					rolled := c
					if c&(bit-1) != 0 { // height below target: roll up
						rolled = c&mask | bit
					}
					err = rApp.Append(relation.Rec{Code: pbicode.Code(rolled), Aux: c})
				}
				if err != nil {
					return err
				}
			}
		}
		return s.Err()
	}
	prep := rollPrep(targetH)
	s := a.Scan()
	defer s.Close()
	for s.Next() {
		r := s.Rec()
		var err error
		if r.Code.Height() > targetH {
			err = hApp.Append(relation.Rec{Code: r.Code, Aux: uint64(r.Code)})
		} else {
			err = rApp.Append(prep(r))
		}
		if err != nil {
			return err
		}
	}
	return s.Err()
}

// multiHeightProbeJoin joins a memory-resident multi-height ancestor set
// against d in one scan: a hash table keyed by ancestor code, probed with
// F(d, h) for each distinct ancestor height — the ancestor-enumeration
// join only PBiTree codes make possible (each probe key is computed from
// the descendant's code alone). Results are exact; no verification needed.
func multiHeightProbeJoin(ctx *Context, a, d *relation.Relation, sink Sink) error {
	if ctx.batch() {
		return multiHeightProbeJoinBatch(ctx, a, d, sink)
	}
	table := newHashTable(a.NumRecords())
	heightSet := make(map[int]struct{})
	s := a.Scan()
	for s.Next() {
		r := s.Rec()
		table.add(r.Code, r)
		heightSet[r.Code.Height()] = struct{}{}
	}
	s.Close()
	if err := s.Err(); err != nil {
		return err
	}
	heights := make([]int, 0, len(heightSet))
	for h := range heightSet {
		heights = append(heights, h)
	}
	ds := d.Scan()
	defer ds.Close()
	for ds.Next() {
		dr := ds.Rec()
		hd := dr.Code.Height()
		for _, h := range heights {
			if h <= hd {
				continue
			}
			if err := table.each(pbicode.F(dr.Code, h), func(ar relation.Rec) error {
				return sink.Emit(ar, dr)
			}); err != nil {
				return err
			}
		}
	}
	return ds.Err()
}
