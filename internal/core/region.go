package core

import (
	"github.com/pbitree/pbitree/internal/extsort"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/pbicode"
)

// This file implements a *native region-coded* execution path: relations
// whose records store the (Start, End) pair explicitly — Start in the Code
// field, End in Aux — exactly what a region-coding system materializes.
// It exists for ablation A2: the paper compared its PBiTree-adapted
// algorithms (which derive Start/End from the code on the fly, Lemma 3)
// against the original region-based ones and found "almost the same
// performance"; these functions reproduce that comparison. Both layouts
// are 16 bytes per record, so page counts match and any difference is pure
// conversion CPU.

// ToRegionRelation rewrites a PBiTree-coded relation into region layout:
// Code holds Start, Aux holds End. The copy cost is charged like any scan;
// A2 excludes it from the measured joins (a region system would have
// stored this layout to begin with).
func ToRegionRelation(ctx *Context, rel *relation.Relation, name string) (*relation.Relation, error) {
	out := relation.New(ctx.Pool, name)
	out.SetCompress(rel.Compressed())
	app := out.NewAppender()
	fail := func(err error) (*relation.Relation, error) {
		app.Close() //nolint:errcheck // first error wins
		out.Free()  //nolint:errcheck // cleanup after earlier error
		return nil, err
	}
	if ctx.batch() {
		var starts, ends []uint64
		bs := rel.BatchScan()
		for bs.Next() {
			codes := bs.Codes()
			if cap(starts) < len(codes) {
				starts = make([]uint64, len(codes))
				ends = make([]uint64, len(codes))
			}
			starts, ends = starts[:len(codes)], ends[:len(codes)]
			pbicode.RegionBatch(starts, ends, codes)
			for i := range codes {
				if err := app.Append(relation.Rec{Code: pbicode.Code(starts[i]), Aux: ends[i]}); err != nil {
					return fail(err)
				}
			}
		}
		if err := bs.Err(); err != nil {
			return fail(err)
		}
	} else {
		s := rel.Scan()
		defer s.Close()
		for s.Next() {
			r := s.Rec()
			if err := app.Append(relation.Rec{
				Code: pbicode.Code(r.Code.Start()),
				Aux:  r.Code.End(),
			}); err != nil {
				return fail(err)
			}
		}
		if err := s.Err(); err != nil {
			return fail(err)
		}
	}
	if err := app.Close(); err != nil {
		out.Free() //nolint:errcheck // cleanup after earlier error
		return nil, err
	}
	return out, nil
}

// ByStoredRegion orders region-layout records in document order: stored
// Start ascending, stored End descending.
func ByStoredRegion(r relation.Rec) extsort.Key {
	return extsort.Key{uint64(r.Code), ^r.Aux}
}

// regionContains reports whether region record s properly contains region
// record d under closed-interval semantics.
func regionContains(s, d relation.Rec) bool {
	return uint64(s.Code) <= uint64(d.Code) && d.Aux <= s.Aux && s != d
}

// StackTreeRegion is the stack-tree-desc join over region-layout inputs in
// document order: the original algorithm, no PBiTree arithmetic anywhere.
// Emitted records keep the region layout; use pbicode.FromRegion to
// recover element codes.
func StackTreeRegion(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sink = ctx.Wrap(sink)
	as, ds := a.Scan(), d.Scan()
	defer as.Close()
	defer ds.Close()
	var st []relation.Rec
	popBelow := func(start uint64) {
		for len(st) > 0 && st[len(st)-1].Aux < start {
			st = st[:len(st)-1]
		}
	}
	less := func(x, y relation.Rec) bool {
		return ByStoredRegion(x).Less(ByStoredRegion(y))
	}
	hasA, hasD := as.Next(), ds.Next()
	for hasD {
		if hasA && !less(ds.Rec(), as.Rec()) {
			ar := as.Rec()
			popBelow(uint64(ar.Code))
			st = append(st, ar)
			hasA = as.Next()
			continue
		}
		dr := ds.Rec()
		popBelow(uint64(dr.Code))
		for _, s := range st {
			if regionContains(s, dr) {
				if err := sink.Emit(s, dr); err != nil {
					return err
				}
			}
		}
		hasD = ds.Next()
	}
	if err := as.Err(); err != nil {
		return err
	}
	return ds.Err()
}

// StackTreeRegionOnTheFly sorts region-layout inputs (cost charged) and
// runs StackTreeRegion, mirroring StackTreeOnTheFly for the adapted path.
func StackTreeRegionOnTheFly(ctx *Context, a, d *relation.Relation, sink Sink) error {
	sa, err := sortWith(ctx, a, ByStoredRegion, "str.a")
	if err != nil {
		return err
	}
	defer sa.Free() //nolint:errcheck // cleanup
	sd, err := sortWith(ctx, d, ByStoredRegion, "str.d")
	if err != nil {
		return err
	}
	defer sd.Free() //nolint:errcheck // cleanup
	return StackTreeRegion(ctx, sa, sd, sink)
}
