package core

import (
	"github.com/pbitree/pbitree/internal/btree"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/pbicode"
)

// This file implements the ADB+ baseline (Chien et al.'s Anc_Des_B+): a
// stack-tree merge that walks the leaf levels of B+-trees on both inputs
// and uses index seeks to skip elements that cannot participate:
//
//   - when the stack is empty and the current ancestor's region closes
//     before the current descendant starts (a.End < d.Start), the whole
//     subtree of a — every following ancestor with Start <= a.End — is
//     skipped with one seek to the first Start > a.End;
//   - when the stack is empty and the current descendant starts before the
//     current ancestor (d.Start < a.Start), no remaining ancestor can
//     contain it or any earlier descendant, so D seeks to the first
//     Start >= a.Start.
//
// Both rules are safe for well-nested regions; Stats.IndexProbes counts
// the seeks. The on-the-fly variant builds both indexes here, charging
// sort + bulk-load I/O, matching the paper's unsorted/unindexed setting.

// treeCursor walks B+-tree leaf entries as (Start, Code) records.
type treeCursor struct {
	t   *btree.Tree
	it  *btree.Iter
	rec relation.Rec
	ok  bool
	err error
}

func newTreeCursor(t *btree.Tree) (*treeCursor, error) {
	c := &treeCursor{t: t}
	if err := c.seek(0); err != nil {
		return nil, err
	}
	return c, nil
}

// seek repositions the cursor at the first entry with Start >= k and
// advances onto it.
func (c *treeCursor) seek(k uint64) error {
	if c.it != nil {
		c.it.Close()
	}
	it, err := c.t.Seek(k)
	if err != nil {
		c.ok = false
		return err
	}
	c.it = it
	c.advance()
	return c.err
}

func (c *treeCursor) advance() {
	if c.it.Next() {
		c.rec = relation.Rec{Code: pbicode.Code(c.it.Val())}
		c.ok = true
		return
	}
	c.ok = false
	c.err = c.it.Err()
}

func (c *treeCursor) close() {
	if c.it != nil {
		c.it.Close()
	}
}

// ADBPlus evaluates the index-assisted stack-tree join over existing
// B+-trees on A.Start and D.Start (leaf order must be document order,
// which BuildStartIndex guarantees).
func ADBPlus(ctx *Context, aIdx, dIdx *btree.Tree, sink Sink) error {
	sink = ctx.Wrap(sink)
	sp := ctx.Trace.Start("merge-scan")
	defer ctx.Trace.End(sp)
	stats := ctx.stats()
	ac, err := newTreeCursor(aIdx)
	if err != nil {
		return err
	}
	defer ac.close()
	dc, err := newTreeCursor(dIdx)
	if err != nil {
		return err
	}
	defer dc.close()

	var st stack
	for dc.ok {
		if ac.ok && !docLess(dc.rec, ac.rec) {
			ar := ac.rec
			if len(st) == 0 && ar.Code.End() < dc.rec.Code.Start() {
				// Skip a's entire closed subtree: nothing in it can
				// contain the current or any later descendant.
				stats.IndexProbes++
				if err := ac.seek(ar.Code.End() + 1); err != nil {
					return err
				}
				continue
			}
			st.popBelow(ar.Code.Start())
			st.push(ar)
			ac.advance()
			if ac.err != nil {
				return ac.err
			}
			continue
		}
		dr := dc.rec
		if len(st) == 0 && ac.ok && dr.Code.Start() < ac.rec.Code.Start() {
			// No remaining ancestor can contain this descendant or any
			// earlier one: jump D forward.
			stats.IndexProbes++
			if err := dc.seek(ac.rec.Code.Start()); err != nil {
				return err
			}
			continue
		}
		if len(st) == 0 && !ac.ok {
			break // no open ancestors and none to come
		}
		st.popBelow(dr.Code.Start())
		if err := st.emitMatches(dr, sink); err != nil {
			return err
		}
		dc.advance()
		if dc.err != nil {
			return dc.err
		}
	}
	if ac.err != nil {
		return ac.err
	}
	return dc.err
}

// ADBPlusOnTheFly builds both Start indexes (sort + bulk-load, cost
// charged) and runs ADBPlus — the paper's ADB+ baseline in the
// neither-sorted-nor-indexed setting.
func ADBPlusOnTheFly(ctx *Context, a, d *relation.Relation, sink Sink) error {
	aIdx, err := BuildStartIndex(ctx, a, "adb.a")
	if err != nil {
		return err
	}
	dIdx, err := BuildStartIndex(ctx, d, "adb.d")
	if err != nil {
		return err
	}
	return ADBPlus(ctx, aIdx, dIdx, sink)
}
