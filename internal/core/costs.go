package core

import "github.com/pbitree/pbitree/internal/relation"

// This file implements the I/O cost model of section 3.4 — the formulas
// the paper's discussion uses to argue when the partitioning algorithms
// beat sorting or indexing on the fly — plus the cost-based algorithm
// choice the paper's section 6 names as the next step beyond the Table 1
// rules. Costs are page I/O estimates; CPU is deliberately excluded, as in
// the paper's analysis.

// CostInputs are the statistics the estimator works from.
type CostInputs struct {
	// APages / DPages are the page counts ‖A‖ and ‖D‖.
	APages, DPages int64
	// ARecs / DRecs are the element counts |A| and |D|.
	ARecs, DRecs int64
	// B is the buffer budget in pages.
	B int
	// HeightsA is the number of distinct ancestor heights (k of MHCJ);
	// 0 means unknown (assume several).
	HeightsA int
	// SortedA / SortedD and IndexedA / IndexedD describe what already
	// exists, removing the corresponding on-the-fly costs.
	SortedA, SortedD   bool
	IndexedA, IndexedD bool
}

// Gather fills CostInputs from relations.
func Gather(ctx *Context, spec InputSpec, a, d *relation.Relation) CostInputs {
	heights := 0
	if spec.SingleHeightA {
		heights = 1
	}
	return CostInputs{
		APages: a.NumPages(), DPages: d.NumPages(),
		ARecs: a.NumRecords(), DRecs: d.NumRecords(),
		B:        ctx.b(),
		HeightsA: heights,
		SortedA:  spec.SortedA, SortedD: spec.SortedD,
		IndexedA: spec.IndexedA, IndexedD: spec.IndexedD,
	}
}

// sortCost estimates external sort I/O: run generation (read + write) plus
// merge passes of 2R each.
func sortCost(pages int64, b int) int64 {
	if pages <= 0 {
		return 0
	}
	runs := (pages + int64(b) - 1) / int64(b)
	passes := int64(0)
	fanIn := int64(b - 1)
	if fanIn < 2 {
		fanIn = 2
	}
	for n := runs; n > 1; n = (n + fanIn - 1) / fanIn {
		passes++
	}
	return 2 * pages * (1 + passes)
}

// EstimateIO predicts the page I/O of running alg on the inputs, per the
// section 3.4 formulas. Estimates for data-dependent effects (rescans,
// index probe fan-out, skew recursion) use the paper's own simplifying
// assumptions and are documented inline.
func EstimateIO(alg Algorithm, in CostInputs) int64 {
	a, d := in.APages, in.DPages
	b := int64(in.B)
	mem := b - 2
	if mem < 1 {
		mem = 1
	}
	min := a
	if d < min {
		min = d
	}
	switch alg {
	case AlgNestedLoop:
		chunks := (a + mem - 1) / mem
		if chunks < 1 {
			chunks = 1
		}
		return a + chunks*d
	case AlgSHCJ, AlgMHCJRollup, AlgVPJ:
		// One in-memory pass when a side fits; one partitioning round
		// otherwise (3(‖A‖+‖D‖), section 3.2/3.3).
		if min <= mem {
			return a + d
		}
		return 3 * (a + d)
	case AlgMHCJ:
		// 5‖A‖ + 3k‖D‖ (section 3.2); unknown k defaults to 4.
		k := int64(in.HeightsA)
		if k <= 0 {
			k = 4
		}
		if min <= mem {
			return a + k*d
		}
		return 5*a + 3*k*d
	case AlgStackTree, AlgStackTreeAnc, AlgMPMGJN:
		cost := a + d // the merge (MPMGJN rescans extra; lower bound)
		if !in.SortedA {
			cost += sortCost(a, in.B)
		}
		if !in.SortedD {
			cost += sortCost(d, in.B)
		}
		return cost
	case AlgADBPlus:
		cost := a + d
		if !in.SortedA || !in.IndexedA {
			cost += sortCost(a, in.B) + a // sort + bulk-load writes
		}
		if !in.SortedD || !in.IndexedD {
			cost += sortCost(d, in.B) + d
		}
		return cost
	case AlgINLJN:
		// Outer = smaller set. When the inner index fits the buffer pool
		// it is read at most once across all probes; otherwise each probe
		// pays a root-to-leaf descent (~4 random pages).
		outerPages, outerRecs := a, in.ARecs
		innerPages := d
		innerIndexed := in.IndexedD
		if d < a {
			outerPages, outerRecs = d, in.DRecs
			innerPages = a
			innerIndexed = in.IndexedA
		}
		cost := outerPages
		if innerPages <= mem {
			cost += innerPages
		} else {
			cost += outerRecs * 4
		}
		if !innerIndexed {
			cost += sortCost(innerPages, in.B) + innerPages
		}
		return cost
	default:
		return 1 << 62
	}
}

// ChooseByCost picks the cheapest applicable algorithm by EstimateIO — the
// cost-based selector of section 6. SHCJ applies only to single-height
// ancestor sets; VPJ needs the tree height.
func ChooseByCost(ctx *Context, spec InputSpec, a, d *relation.Relation) Algorithm {
	in := Gather(ctx, spec, a, d)
	candidates := []Algorithm{AlgMHCJRollup, AlgStackTree, AlgADBPlus, AlgINLJN, AlgNestedLoop}
	if spec.SingleHeightA {
		candidates = append(candidates, AlgSHCJ)
	}
	if ctx.TreeHeight > 0 {
		candidates = append(candidates, AlgVPJ)
	}
	best := candidates[0]
	bestCost := EstimateIO(best, in)
	for _, alg := range candidates[1:] {
		if c := EstimateIO(alg, in); c < bestCost ||
			(c == bestCost && preferPartitioned(alg, best)) {
			best, bestCost = alg, c
		}
	}
	return best
}

// preferPartitioned breaks cost ties toward the partitioning algorithms
// (no sort order destroyed, better CPU constants on modern hardware).
func preferPartitioned(alg, over Algorithm) bool {
	rank := func(x Algorithm) int {
		switch x {
		case AlgSHCJ: // exact equijoin, no verification filter
			return 0
		case AlgMHCJRollup, AlgVPJ:
			return 1
		case AlgStackTree, AlgADBPlus:
			return 2
		default:
			return 3
		}
	}
	return rank(alg) < rank(over)
}
