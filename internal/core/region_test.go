package core

import (
	"math/rand"
	"testing"

	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/pbicode"
)

func TestStackTreeRegionMatchesOracle(t *testing.T) {
	const h = 12
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		aCodes := randCodes(rng, 300+rng.Intn(500), h, -1)
		dCodes := randCodes(rng, 300+rng.Intn(500), h, -1)
		want := oracle(aCodes, dCodes)

		ctx := newCtx(t, 8, h)
		a := load(t, ctx, "A", aCodes)
		d := load(t, ctx, "D", dCodes)
		ra, err := ToRegionRelation(ctx, a, "RA")
		if err != nil {
			t.Fatal(err)
		}
		rd, err := ToRegionRelation(ctx, d, "RD")
		if err != nil {
			t.Fatal(err)
		}
		// Region records carry (Start, End); rebuild element codes at
		// emission to compare against the oracle.
		var got []Pair
		err = StackTreeRegionOnTheFly(ctx, ra, rd, sinkFunc(func(ar, dr relation.Rec) error {
			got = append(got, Pair{
				A: pbicode.FromRegion(pbicode.Region{Start: uint64(ar.Code), End: ar.Aux}),
				D: pbicode.FromRegion(pbicode.Region{Start: uint64(dr.Code), End: dr.Aux}),
			})
			return nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		samePairs(t, "stacktree-region", got, want)
		if ctx.Pool.PinnedFrames() != 0 {
			t.Fatal("leaked pins")
		}
	}
}

func TestRegionLayoutSamePageCount(t *testing.T) {
	const h = 14
	rng := rand.New(rand.NewSource(9))
	codes := randCodes(rng, 2000, h, -1)
	ctx := newCtx(t, 8, h)
	rel := load(t, ctx, "R", codes)
	reg, err := ToRegionRelation(ctx, rel, "RR")
	if err != nil {
		t.Fatal(err)
	}
	if reg.NumPages() != rel.NumPages() || reg.NumRecords() != rel.NumRecords() {
		t.Fatalf("layouts differ: %d/%d pages", reg.NumPages(), rel.NumPages())
	}
}

func TestRegionSelfJoinExcludesSelf(t *testing.T) {
	// Identical regions in both sets are the same element: never a pair.
	const h = 8
	codes := []pbicode.Code{pbicode.Root(h), 2, 1}
	ctx := newCtx(t, 8, h)
	rel := load(t, ctx, "R", codes)
	ra, err := ToRegionRelation(ctx, rel, "RA")
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ToRegionRelation(ctx, rel, "RD")
	if err != nil {
		t.Fatal(err)
	}
	var sink CountSink
	if err := StackTreeRegionOnTheFly(ctx, ra, rd, &sink); err != nil {
		t.Fatal(err)
	}
	if want := int64(len(oracle(codes, codes))); sink.N != want {
		t.Fatalf("pairs = %d, want %d", sink.N, want)
	}
}
