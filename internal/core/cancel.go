package core

import (
	"context"
	"errors"
)

// ErrCanceled is returned (wrapped) by every join algorithm when the
// execution's context.Context is canceled mid-join. errors.Is matches both
// ErrCanceled and context.Canceled on the returned error.
var ErrCanceled = errors.New("core: join canceled")

// ErrDeadlineExceeded is the deadline analogue of ErrCanceled; errors.Is
// matches both ErrDeadlineExceeded and context.DeadlineExceeded.
var ErrDeadlineExceeded = errors.New("core: join deadline exceeded")

// cancelErr couples one of the package sentinels with the underlying
// context error so callers can test either vocabulary with errors.Is.
type cancelErr struct {
	sentinel error
	cause    error
}

func (e *cancelErr) Error() string   { return e.sentinel.Error() }
func (e *cancelErr) Unwrap() []error { return []error{e.sentinel, e.cause} }

// Canceled polls the execution's context without blocking. It returns nil
// when no context is attached or the context is still live, and a
// sentinel-wrapped error once the context is canceled or past its
// deadline. The buffer pool calls this before every page request while
// the execution is armed (see ArmPool), and the pair-counting sink calls
// it periodically to cover CPU-bound emission loops.
func (c *Context) Canceled() error {
	if c.Ctx == nil {
		return nil
	}
	select {
	case <-c.Ctx.Done():
		cause := c.Ctx.Err()
		sentinel := ErrCanceled
		if errors.Is(cause, context.DeadlineExceeded) {
			sentinel = ErrDeadlineExceeded
		}
		return &cancelErr{sentinel: sentinel, cause: cause}
	default:
		return nil
	}
}

// ArmPool installs the context's cancellation check as the buffer pool's
// interrupt, giving every page access cancellation granularity, and
// returns a restore function that reinstates the previous interrupt.
// With no context attached it is a no-op. Arming nests safely: inner
// executions save and restore the outer interrupt.
func (c *Context) ArmPool() func() {
	if c.Ctx == nil {
		return func() {}
	}
	prev := c.Pool.SetInterrupt(c.Canceled)
	return func() { c.Pool.SetInterrupt(prev) }
}
