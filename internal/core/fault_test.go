package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
)

// TestJoinsSurfaceDiskErrors drives every algorithm over a disk that
// starts failing mid-join: the error must propagate (not panic, not hang)
// and no buffer pins may leak.
func TestJoinsSurfaceDiskErrors(t *testing.T) {
	const h = 10
	rng := rand.New(rand.NewSource(21))
	aCodes := randCodes(rng, 600, h, -1)
	dCodes := randCodes(rng, 600, h, -1)
	for name, fn := range algorithms() {
		// Fail at several points: during the first scans, mid-partition,
		// and late.
		for _, failAt := range []int64{5, 60, 400} {
			d := storage.NewMemDisk(256, storage.CostModel{})
			fd := storage.NewFaultDisk(d)
			pool := buffer.New(fd, 8)
			ctx := &Context{Pool: pool, TreeHeight: h, Stats: &Stats{}}
			a, err := relation.FromCodes(pool, "A", aCodes)
			if err != nil {
				t.Fatal(err)
			}
			dd, err := relation.FromCodes(pool, "D", dCodes)
			if err != nil {
				t.Fatal(err)
			}
			if err := pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
			fd.FailReadAfter = failAt
			fd.FailWriteAfter = failAt
			err = fn(ctx, a, dd, &CountSink{})
			// With a large enough failAt the join may legitimately
			// complete from resident pages; otherwise the injected error
			// must surface.
			if err != nil && !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("%s(failAt=%d): unexpected error %v", name, failAt, err)
			}
			if got := pool.PinnedFrames(); got != 0 {
				t.Fatalf("%s(failAt=%d): leaked %d pins (err=%v)", name, failAt, got, err)
			}
		}
	}
}

// TestJoinsOnBinarizedTrees is the end-to-end property: element sets drawn
// from *real binarized data trees* (not uniform codes) joined by every
// algorithm match the nested-loop oracle.
func TestJoinsOnBinarizedTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random data tree, random tag assignment over 3 tags.
		root := &pbicode.Node{Label: "t0"}
		nodes := []*pbicode.Node{root}
		n := 30 + rng.Intn(250)
		for i := 0; i < n; i++ {
			p := nodes[rng.Intn(len(nodes))]
			c := p.AddChild("t" + string(rune('0'+rng.Intn(3))))
			nodes = append(nodes, c)
		}
		tree, err := pbicode.Binarize(root)
		if err != nil {
			return false
		}
		aCodes := tree.Select("t1")
		dCodes := tree.Select("t2")
		want := oracle(aCodes, dCodes)
		for name, fn := range algorithms() {
			d := storage.NewMemDisk(256, storage.CostModel{})
			pool := buffer.New(d, 6)
			ctx := &Context{Pool: pool, TreeHeight: tree.Height, Stats: &Stats{}}
			a, err := relation.FromCodes(pool, "A", aCodes)
			if err != nil {
				return false
			}
			dd, err := relation.FromCodes(pool, "D", dCodes)
			if err != nil {
				return false
			}
			var sink PairSink
			if err := fn(ctx, a, dd, &sink); err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			got := sink.Pairs
			sortPairs(got)
			w := append([]Pair(nil), want...)
			sortPairs(w)
			if len(got) != len(w) {
				t.Logf("%s: %d pairs, want %d", name, len(got), len(w))
				return false
			}
			for i := range w {
				if got[i] != w[i] {
					t.Logf("%s: pair %d mismatch", name, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestEmitErrorStopsJoin verifies sinks can abort any algorithm.
func TestEmitErrorStopsJoin(t *testing.T) {
	const h = 8
	rng := rand.New(rand.NewSource(22))
	aCodes := randCodes(rng, 200, h, -1)
	dCodes := randCodes(rng, 200, h, -1)
	sentinel := errors.New("enough")
	for name, fn := range algorithms() {
		ctx := newCtx(t, 8, h)
		a := load(t, ctx, "A", aCodes)
		d := load(t, ctx, "D", dCodes)
		n := 0
		err := fn(ctx, a, d, sinkFunc(func(ar, dr relation.Rec) error {
			n++
			if n >= 3 {
				return sentinel
			}
			return nil
		}))
		if len(oracle(aCodes, dCodes)) >= 3 && !errors.Is(err, sentinel) {
			t.Errorf("%s: emit error not surfaced: %v", name, err)
		}
		if got := ctx.Pool.PinnedFrames(); got != 0 {
			t.Errorf("%s: leaked %d pins", name, got)
		}
	}
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(a, d relation.Rec) error

func (f sinkFunc) Emit(a, d relation.Rec) error { return f(a, d) }
