package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
)

// TestJoinsSurfaceDiskErrors drives every algorithm over a disk that
// starts failing mid-join: the error must propagate (not panic, not hang)
// and no buffer pins may leak.
func TestJoinsSurfaceDiskErrors(t *testing.T) {
	const h = 10
	rng := rand.New(rand.NewSource(21))
	aCodes := randCodes(rng, 600, h, -1)
	dCodes := randCodes(rng, 600, h, -1)
	for name, fn := range algorithms() {
		// Fail at several points: during the first scans, mid-partition,
		// and late.
		for _, failAt := range []int64{5, 60, 400} {
			d := storage.NewMemDisk(256, storage.CostModel{})
			fd := storage.NewFaultDisk(d)
			pool := buffer.New(fd, 8)
			ctx := &Context{Pool: pool, TreeHeight: h, Stats: &Stats{}}
			a, err := relation.FromCodes(pool, "A", aCodes)
			if err != nil {
				t.Fatal(err)
			}
			dd, err := relation.FromCodes(pool, "D", dCodes)
			if err != nil {
				t.Fatal(err)
			}
			if err := pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
			fd.FailReadAfter = failAt
			fd.FailWriteAfter = failAt
			err = fn(ctx, a, dd, &CountSink{})
			// With a large enough failAt the join may legitimately
			// complete from resident pages; otherwise the injected error
			// must surface.
			if err != nil && !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("%s(failAt=%d): unexpected error %v", name, failAt, err)
			}
			if got := pool.PinnedFrames(); got != 0 {
				t.Fatalf("%s(failAt=%d): leaked %d pins (err=%v)", name, failAt, got, err)
			}
		}
	}
}

// TestJoinsOnBinarizedTrees is the end-to-end property: element sets drawn
// from *real binarized data trees* (not uniform codes) joined by every
// algorithm match the nested-loop oracle.
func TestJoinsOnBinarizedTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random data tree, random tag assignment over 3 tags.
		root := &pbicode.Node{Label: "t0"}
		nodes := []*pbicode.Node{root}
		n := 30 + rng.Intn(250)
		for i := 0; i < n; i++ {
			p := nodes[rng.Intn(len(nodes))]
			c := p.AddChild("t" + string(rune('0'+rng.Intn(3))))
			nodes = append(nodes, c)
		}
		tree, err := pbicode.Binarize(root)
		if err != nil {
			return false
		}
		aCodes := tree.Select("t1")
		dCodes := tree.Select("t2")
		want := oracle(aCodes, dCodes)
		for name, fn := range algorithms() {
			d := storage.NewMemDisk(256, storage.CostModel{})
			pool := buffer.New(d, 6)
			ctx := &Context{Pool: pool, TreeHeight: tree.Height, Stats: &Stats{}}
			a, err := relation.FromCodes(pool, "A", aCodes)
			if err != nil {
				return false
			}
			dd, err := relation.FromCodes(pool, "D", dCodes)
			if err != nil {
				return false
			}
			var sink PairSink
			if err := fn(ctx, a, dd, &sink); err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			got := sink.Pairs
			sortPairs(got)
			w := append([]Pair(nil), want...)
			sortPairs(w)
			if len(got) != len(w) {
				t.Logf("%s: %d pairs, want %d", name, len(got), len(w))
				return false
			}
			for i := range w {
				if got[i] != w[i] {
					t.Logf("%s: pair %d mismatch", name, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestEmitErrorStopsJoin verifies sinks can abort any algorithm.
func TestEmitErrorStopsJoin(t *testing.T) {
	const h = 8
	rng := rand.New(rand.NewSource(22))
	aCodes := randCodes(rng, 200, h, -1)
	dCodes := randCodes(rng, 200, h, -1)
	sentinel := errors.New("enough")
	for name, fn := range algorithms() {
		ctx := newCtx(t, 8, h)
		a := load(t, ctx, "A", aCodes)
		d := load(t, ctx, "D", dCodes)
		n := 0
		err := fn(ctx, a, d, sinkFunc(func(ar, dr relation.Rec) error {
			n++
			if n >= 3 {
				return sentinel
			}
			return nil
		}))
		if len(oracle(aCodes, dCodes)) >= 3 && !errors.Is(err, sentinel) {
			t.Errorf("%s: emit error not surfaced: %v", name, err)
		}
		if got := ctx.Pool.PinnedFrames(); got != 0 {
			t.Errorf("%s: leaked %d pins", name, got)
		}
	}
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(a, d relation.Rec) error

func (f sinkFunc) Emit(a, d relation.Rec) error { return f(a, d) }

// indexedAlgorithms are the algorithms that bulk-load index pages (B-tree
// or interval tree) with no free path; their index pages legitimately stay
// resident after the join, so temp-leak baselines exclude them.
var indexedAlgorithms = map[string]bool{"INLJN": true, "ADBPlus": true}

// TestJoinsFreeTempsOnDiskErrors sweeps every algorithm over disks that
// fail at a range of points and asserts failure containment: a clean
// error (no panic, no hang), zero leaked pins, and — for the algorithms
// without index side-structures — every temporary page freed, measured as
// the pool's resident-page count returning to its pre-join baseline. The
// pool is sized above the working set so nothing is evicted and a leaked
// temp necessarily stays visible in the pool table.
func TestJoinsFreeTempsOnDiskErrors(t *testing.T) {
	const h = 10
	rng := rand.New(rand.NewSource(23))
	aCodes := randCodes(rng, 400, h, -1)
	dCodes := randCodes(rng, 400, h, -1)
	for name, fn := range algorithms() {
		for _, failAt := range []int64{1, 3, 10, 40, 150} {
			d := storage.NewMemDisk(256, storage.CostModel{})
			fd := storage.NewFaultDisk(d)
			pool := buffer.New(fd, 512)
			ctx := &Context{Pool: pool, TreeHeight: h, Stats: &Stats{}}
			a, err := relation.FromCodes(pool, "A", aCodes)
			if err != nil {
				t.Fatal(err)
			}
			dd, err := relation.FromCodes(pool, "D", dCodes)
			if err != nil {
				t.Fatal(err)
			}
			if err := pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
			baseline := pool.Resident()
			fd.FailReadAfter = failAt
			fd.FailWriteAfter = failAt
			err = fn(ctx, a, dd, &CountSink{})
			if err != nil && !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("%s(failAt=%d): unexpected error %v", name, failAt, err)
			}
			if got := pool.PinnedFrames(); got != 0 {
				t.Fatalf("%s(failAt=%d): leaked %d pins (err=%v)", name, failAt, got, err)
			}
			if !indexedAlgorithms[name] {
				if got := pool.Resident(); got != baseline {
					t.Fatalf("%s(failAt=%d): resident pages %d, want baseline %d — leaked temp pages (err=%v)",
						name, failAt, got, baseline, err)
				}
			}
		}
	}
}

// TestJoinsCancelCleanly sweeps every algorithm with a context that is
// canceled after exactly k page reads (the FaultDisk.OnRead hook fires the
// cancel; the buffer pool's armed interrupt surfaces it on the following
// page request). The join must return ErrCanceled — matching both the
// core sentinel and context.Canceled — leak no pins, and free every
// temporary page.
func TestJoinsCancelCleanly(t *testing.T) {
	const h = 10
	rng := rand.New(rand.NewSource(24))
	aCodes := randCodes(rng, 400, h, -1)
	dCodes := randCodes(rng, 400, h, -1)
	for name, fn := range algorithms() {
		for _, cancelAt := range []int64{0, 2, 8, 30, 120} {
			d := storage.NewMemDisk(256, storage.CostModel{})
			fd := storage.NewFaultDisk(d)
			pool := buffer.New(fd, 512)
			goCtx, cancel := context.WithCancel(context.Background())
			ctx := &Context{Pool: pool, TreeHeight: h, Stats: &Stats{}, Ctx: goCtx}
			a, err := relation.FromCodes(pool, "A", aCodes)
			if err != nil {
				t.Fatal(err)
			}
			dd, err := relation.FromCodes(pool, "D", dCodes)
			if err != nil {
				t.Fatal(err)
			}
			if err := pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
			baseline := pool.Resident()
			reads := int64(0)
			at := cancelAt
			fd.OnRead = func(storage.PageID) error {
				if reads++; reads >= at {
					cancel()
				}
				return nil
			}
			if at == 0 {
				cancel() // canceled before the join even starts
			}
			restore := ctx.ArmPool()
			err = fn(ctx, a, dd, &CountSink{})
			restore()
			cancel()
			// A join whose whole working set is already resident may finish
			// without another page request; otherwise cancellation must
			// surface through both error vocabularies.
			if err != nil {
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("%s(cancelAt=%d): error %v, want ErrCanceled", name, cancelAt, err)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s(cancelAt=%d): error does not unwrap to context.Canceled", name, cancelAt)
				}
			}
			if got := pool.PinnedFrames(); got != 0 {
				t.Fatalf("%s(cancelAt=%d): leaked %d pins (err=%v)", name, cancelAt, got, err)
			}
			if !indexedAlgorithms[name] {
				if got := pool.Resident(); got != baseline {
					t.Fatalf("%s(cancelAt=%d): resident pages %d, want baseline %d — leaked temp pages (err=%v)",
						name, cancelAt, got, baseline, err)
				}
			}
		}
	}
}
