// Parallel fan-out of independent partition joins across worker
// goroutines. The paper's partitioning algorithms decompose a containment
// join into units that share no state — per-height equijoins (MHCJ,
// section 3.2) and per-subtree joins (VPJ, section 3.3) — so the engine
// can evaluate them concurrently without changing any result: each worker
// gets a private buffer pool carved from the parent's page budget over a
// storage.View of the shared disk, runs the unit exactly as the serial
// code would, and emits through a mutex-serialized sink into the parent's
// chain. See doc/PARALLEL.md for the full execution model and its
// accounting invariants.
package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/relation"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/internal/trace"
)

// lockedSink serializes a sink chain shared by concurrent workers. The
// mutex covers the whole downstream — verification filters, the parent's
// counting sink, the user's Emit — so everything below it runs exactly as
// in a serial execution, one pair at a time.
type lockedSink struct {
	mu   sync.Mutex
	sink Sink
}

func (s *lockedSink) Emit(a, d relation.Rec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink.Emit(a, d)
}

// merge folds a finished worker's counters into the parent's. Pairs is
// deliberately excluded: every emitted pair already passed through the
// parent's counting sink under the lockedSink mutex, so the parent's
// count is authoritative and the workers' counts (kept for per-task trace
// snapshots) would double it.
func (s *Stats) merge(o *Stats) {
	s.FalseHits += o.FalseHits
	s.Partitions += o.Partitions
	s.Replicated += o.Replicated
	s.Rescans += o.Rescans
	s.IndexProbes += o.IndexProbes
	if o.MaxRecursion > s.MaxRecursion {
		s.MaxRecursion = o.MaxRecursion
	}
}

// isCancelErr reports whether err is a cooperative-abort error rather
// than a real failure; error selection prefers real failures.
func isCancelErr(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded)
}

// errTaskSkipped marks fan-out tasks abandoned because a sibling failed
// first; it never escapes runParallel.
var errTaskSkipped = errors.New("core: task skipped after sibling failure")

// parallelDegree returns the worker count for a fan-out of n independent
// units: the context's Parallel degree, clamped to n and to the number of
// 3-page worker budgets the memory budget can carve (the extsort floor —
// below 3 pages a worker could not even sort). A result of 1 means the
// caller should take its serial path.
func (c *Context) parallelDegree(n int) int {
	d := c.Parallel
	if d > n {
		d = n
	}
	if lim := c.b() / 3; d > lim {
		d = lim
	}
	if d < 1 {
		d = 1
	}
	return d
}

// runParallel evaluates n independent tasks on degree worker goroutines,
// task i on worker i%degree (striped static assignment, so which worker
// runs which task — and therefore every per-worker counter — is
// deterministic). Each worker owns a buffer pool of b/degree pages over a
// private storage.View of the shared disk; fn receives a fresh child
// Context bound to that pool (Parallel=1: nested fan-outs run serially
// inside their worker) and the task index. Worker stats, spans (one root
// per task, named span, Detail = detail(i)) and pool counters merge into
// the parent in task order after all workers finish.
//
// Cancellation: each child is armed via ArmPool as usual; when the parent
// has a Go context, a derived context cancels the siblings as soon as any
// task fails, and without one a failure flag stops workers between tasks.
// The first non-cancellation error in task order wins (matching the
// scatter-gather shard engine), cancellation errors surfacing only when
// no task failed for a real reason.
func (c *Context) runParallel(degree, n int, span string, detail func(i int) string, fn func(child *Context, i int) error) error {
	// Workers read the current disk state through fresh pools: any dirty
	// page resident only in the parent's pool must be written out first.
	if err := c.Pool.FlushAll(); err != nil {
		return err
	}
	bw := c.b() / degree
	if bw < 3 {
		bw = 3
	}
	runCtx := c.Ctx
	var cancel context.CancelFunc
	if c.Ctx != nil {
		runCtx, cancel = context.WithCancel(c.Ctx)
		defer cancel()
	}
	var failed atomic.Bool
	views := make([]*storage.View, degree)
	pools := make([]*buffer.Pool, degree)
	for w := range pools {
		views[w] = storage.NewView(c.Pool.Disk())
		pools[w] = buffer.New(views[w], bw)
	}
	childStats := make([]*Stats, n)
	childRoots := make([]*trace.Span, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < degree; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view, wp := views[w], pools[w]
			for i := w; i < n; i += degree {
				if failed.Load() {
					errs[i] = errTaskSkipped
					continue
				}
				stats := &Stats{}
				childStats[i] = stats
				child := &Context{
					Pool:              wp,
					TreeHeight:        c.TreeHeight,
					MaxAncestorHeight: c.MaxAncestorHeight,
					VPJRootCut:        c.VPJRootCut,
					NoBatch:           c.NoBatch,
					Stats:             stats,
					Ctx:               runCtx,
					Parallel:          1,
				}
				if c.Trace != nil {
					child.Trace = trace.New(span, func() trace.Counters {
						vs := view.Stats()
						ps := wp.Stats()
						return trace.Counters{
							Reads: vs.Reads, Writes: vs.Writes,
							SeqReads: vs.SeqReads, SeqWrites: vs.SeqWrites,
							VirtualIO: vs.VirtualIO,
							PoolHits:  ps.Hits, PoolMisses: ps.Misses,
							PoolEvictions: ps.Evictions,
							Pairs:         stats.Pairs,
						}
					})
				}
				restore := child.ArmPool()
				err := fn(child, i)
				restore()
				if root := child.Trace.Finish(); root != nil {
					root.Detail = detail(i)
					childRoots[i] = root
				}
				if err != nil {
					errs[i] = err
					failed.Store(true)
					if cancel != nil {
						cancel()
					}
					for u := i + degree; u < n; u += degree {
						errs[u] = errTaskSkipped
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Deterministic merge: stats and spans in task order, pool counters
	// in worker order — none of it depends on completion timing.
	for _, stats := range childStats {
		if stats != nil {
			c.stats().merge(stats)
		}
	}
	for _, root := range childRoots {
		if root != nil {
			c.Trace.Attach(root)
		}
	}
	for _, wp := range pools {
		c.Pool.Absorb(wp.Stats())
	}
	var cancelErr error
	for _, err := range errs {
		switch {
		case err == nil || errors.Is(err, errTaskSkipped):
		case isCancelErr(err):
			if cancelErr == nil {
				cancelErr = err
			}
		default:
			return err
		}
	}
	return cancelErr
}
