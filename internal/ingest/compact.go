package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/pbitree/pbitree/containment"
)

// This file is the compaction daemon: when an epoch's delta chain grows
// past Config.CompactAfter files, the chain is folded back into a fresh
// self-contained (version-1) database — a new base — and published as the
// next epoch. Compaction runs entirely outside the store lock against an
// immutable epoch snapshot: epoch files are never mutated after publish,
// so the fold can proceed while ingest commits keep landing. If a commit
// publishes a newer epoch before the fold finishes, the stale result is
// discarded (compactAborts) and the daemon retries on a later tick; the
// alternative — holding the lock for the whole fold — would stall ingest
// for exactly the batches compaction exists to speed up.
//
// The write rate is capped by Config.CompactPagesPerSec: after each
// relation is copied, the daemon sleeps long enough that cumulative pages
// written divided by elapsed time stays under the budget. The granularity
// is a relation, not a page — coarse, but it bounds the burst a compaction
// can impose on the disk a serving tier shares.

// compactor is the daemon loop.
func (s *Store) compactor() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			due := s.chain >= s.cfg.CompactAfter
			s.mu.Unlock()
			if !due {
				continue
			}
			if err := s.CompactNow(); err != nil {
				// Nothing to do but retry on a later tick; the chain only
				// grows, so the condition re-fires.
				continue
			}
		}
	}
}

// CompactNow folds the current epoch's delta chain into a fresh
// self-contained database and publishes it as the next epoch. Safe to call
// concurrently with Apply: the fold runs against the epoch that was
// current when it started, and aborts (without publishing) if a commit
// supersedes it mid-fold. No-op error when the current epoch is already a
// plain base with no chain.
func (s *Store) CompactNow() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("ingest: store closed")
	}
	srcEpoch, srcPath := s.man.Current, s.cur
	chain := s.chain
	s.mu.Unlock()
	if chain == 0 {
		return fmt.Errorf("ingest: epoch %d has no delta chain to compact", srcEpoch)
	}

	dstEpoch := srcEpoch + 1
	dstPath := filepath.Join(s.dir, fmt.Sprintf("compact-%06d.pbidb", dstEpoch))
	// Fold into a ".tmp-" name invisible to the GC scan: a commit may
	// publish (and sweep unreferenced files) while the fold runs unlocked.
	tmpPath := filepath.Join(s.dir, fmt.Sprintf(".tmp-compact-%06d.pbidb", dstEpoch))
	pages, docs, err := s.fold(srcPath, tmpPath)
	if err != nil {
		removeDBFiles(tmpPath)
		return err
	}

	s.mu.Lock()
	if s.closed || s.man.Current != srcEpoch {
		// A commit published a newer epoch while we folded: our snapshot is
		// stale. Drop it; the daemon retries against the new current.
		s.mu.Unlock()
		removeDBFiles(tmpPath)
		s.compactAborts.Add(1)
		return fmt.Errorf("ingest: compaction of epoch %d superseded by epoch %d", srcEpoch, s.man.Current)
	}
	// The v1 catalog is self-contained (page IDs, no embedded paths), so
	// the database renames atomically into its published name.
	for _, ext := range []string{"", ".catalog", ".sums"} {
		if err := os.Rename(tmpPath+ext, dstPath+ext); err != nil {
			s.mu.Unlock()
			removeDBFiles(tmpPath)
			removeDBFiles(dstPath)
			return fmt.Errorf("ingest: publish compacted base: %w", err)
		}
	}
	base := filepath.Base(dstPath)
	entry := EpochEntry{
		Epoch:     dstEpoch,
		Path:      base,
		Compacted: true,
		Files:     []string{base, base + ".catalog", base + ".sums"},
		Chain:     []string{base},
	}
	err = s.publishLocked(entry)
	if err != nil {
		s.mu.Unlock()
		removeDBFiles(dstPath)
		return err
	}
	s.cur = dstPath
	s.chain = 0
	_ = docs
	s.compactions.Add(1)
	s.compactedPages.Add(uint64(pages))
	hook := s.onPublish
	s.mu.Unlock()
	if hook != nil {
		hook(dstEpoch, dstPath)
	}
	return nil
}

// fold copies every relation of the source epoch into a fresh writable
// database at dstPath under the I/O budget and saves it as a version-1
// catalog. Returns the pages written.
func (s *Store) fold(srcPath, dstPath string) (int64, int, error) {
	src, srcRels, err := containment.Open(containment.Config{
		Path: srcPath, ReadOnly: true, BufferPages: s.cfg.BufferPages,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("ingest: compact: open source: %w", err)
	}
	defer src.Close()
	dst, err := containment.NewEngine(containment.Config{
		Path: dstPath, PageSize: src.PageSize(), BufferPages: s.cfg.BufferPages,
		TreeHeight: src.TreeHeight(),
	})
	if err != nil {
		return 0, 0, fmt.Errorf("ingest: compact: create base: %w", err)
	}
	defer dst.Close()

	names := make([]string, 0, len(srcRels))
	for name := range srcRels {
		names = append(names, name)
	}
	sort.Strings(names)

	start := time.Now()
	var pages int64
	var loaded []*containment.Relation
	for _, name := range names {
		codes, err := srcRels[name].Codes()
		if err != nil {
			return 0, 0, fmt.Errorf("ingest: compact: read %s: %w", name, err)
		}
		r, err := dst.Load(name, codes)
		if err != nil {
			return 0, 0, fmt.Errorf("ingest: compact: write %s: %w", name, err)
		}
		loaded = append(loaded, r)
		pages += r.Pages()
		s.throttle(pages, start)
	}
	if err := dst.SaveDocs(src.Documents(), loaded...); err != nil {
		return 0, 0, fmt.Errorf("ingest: compact: save base: %w", err)
	}
	return pages, len(names), nil
}

// throttle sleeps until cumulative pages written over elapsed time is back
// under the configured budget.
func (s *Store) throttle(pages int64, start time.Time) {
	rate := s.cfg.CompactPagesPerSec
	if rate <= 0 || pages == 0 {
		return
	}
	need := time.Duration(float64(pages) / float64(rate) * float64(time.Second))
	if sleep := need - time.Since(start); sleep > 0 {
		select {
		case <-s.stop:
		case <-time.After(sleep):
		}
	}
}

// removeDBFiles best-effort deletes a database's page file and sidecars.
func removeDBFiles(path string) {
	for _, p := range []string{path, path + ".catalog", path + ".sums", path + ".delta"} {
		if strings.Contains(p, "..") {
			continue
		}
		os.Remove(p) //nolint:errcheck // cleanup of files we just created
	}
}
