// Package ingest is the live write path over an immutable pbitree
// database: epoch-based snapshots, online re-encoding with gap-aware code
// assignment, and a background compaction daemon.
//
// The serving tier (internal/qserv) holds the paper's invariant that query
// execution runs over an immutable page file. Ingest preserves it by never
// mutating the file queries read: updates apply to an in-memory forest of
// the stored collection (rebuilt from the stored (tag, code) pairs via
// xmltree.FromCodes), new codes are assigned from the PBiTree embedding's
// virtual-node gaps (the paper's §2.3.2 observation, extended with a
// reserved overflow region in the spirit of Tropashko's nested-intervals
// gap schemes), and each committed batch is frozen as epoch N+1 — a delta
// file plus a version-2 catalog layered over the same base (see
// containment.SaveEpoch). An atomic manifest swap publishes the new epoch;
// queries that started on epoch N finish on epoch N. When the delta chain
// grows long, the compaction daemon folds it back into a fresh
// self-contained database under a configurable I/O budget and the chain
// restarts. See doc/INGEST.md.
package ingest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// manifestName is the swap file inside the epochs directory.
const manifestName = "MANIFEST.json"

// EpochEntry is one published epoch in the manifest.
type EpochEntry struct {
	Epoch int64 `json:"epoch"`
	// Path is the epoch's database path (catalog basename without the
	// ".catalog" suffix) relative to the epochs directory. Epoch 0 points
	// back at the original database outside the directory ("../<db>").
	Path string `json:"path"`
	// Compacted marks a self-contained (version-1) database produced by the
	// compaction daemon — a new base; delta epochs chain over the nearest
	// compacted/original base below them.
	Compacted bool `json:"compacted,omitempty"`
	// Files are the files this epoch owns (relative to the epochs
	// directory): its catalog and delta, or a compacted database's page
	// file, catalog and checksum sidecar. Epoch 0 owns nothing — the
	// original database is never garbage-collected.
	Files []string `json:"files,omitempty"`
	// Chain is every file the epoch's page image depends on (base page
	// file and all deltas, relative; the base's sidecars ride along with
	// its owning entry). Retirement GC only deletes files no retained
	// epoch's Chain or Files references.
	Chain []string `json:"chain,omitempty"`
}

// Manifest is the epochs directory's swap record: which epochs exist and
// which one is current. It is rewritten atomically (tmp+rename) on every
// publication, so readers see either the old or the new epoch, never a
// half-written state.
type Manifest struct {
	Current int64        `json:"current"`
	Epochs  []EpochEntry `json:"epochs"`
}

// epochsDir returns the directory holding a database's epochs and manifest.
func epochsDir(dbPath string) string { return dbPath + ".epochs" }

// loadManifest reads the manifest in dir; a missing file returns (nil, nil)
// so callers can initialize a fresh directory.
func loadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ingest: parse manifest: %w", err)
	}
	sort.Slice(m.Epochs, func(i, j int) bool { return m.Epochs[i].Epoch < m.Epochs[j].Epoch })
	return &m, nil
}

// save writes the manifest atomically into dir.
func (m *Manifest) save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// entry returns the manifest entry for an epoch, or nil.
func (m *Manifest) entry(epoch int64) *EpochEntry {
	for i := range m.Epochs {
		if m.Epochs[i].Epoch == epoch {
			return &m.Epochs[i]
		}
	}
	return nil
}

// resolve returns an entry's database path as an absolute/openable path.
func resolve(dir string, e *EpochEntry) string {
	return filepath.Join(dir, e.Path)
}

// EpochList is a read-only view of a database's epoch family for tooling
// (pbidb epochs, pbifsck): the manifest contents plus the directory they
// resolve against, obtained without rebuilding the forest the way Open
// does — listing a large database's epochs costs one small JSON read.
type EpochList struct {
	// Dir is the epochs directory (DB path + ".epochs").
	Dir     string
	Current int64
	Epochs  []EpochEntry
}

// Resolve returns an entry's database path as an openable path.
func (l *EpochList) Resolve(e EpochEntry) string { return resolve(l.Dir, &e) }

// ListEpochs reads the epoch manifest beside dbPath without opening a
// store. A database that has never taken a write (no epochs directory or
// manifest) returns (nil, nil): it has only the implicit epoch 0, which
// is the page file itself.
func ListEpochs(dbPath string) (*EpochList, error) {
	dir := epochsDir(dbPath)
	m, err := loadManifest(dir)
	if err != nil || m == nil {
		return nil, err
	}
	return &EpochList{Dir: dir, Current: m.Current, Epochs: m.Epochs}, nil
}
