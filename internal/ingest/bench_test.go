package ingest

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pbitree/pbitree/pbicode"
	"github.com/pbitree/pbitree/xmltree"
)

// BenchmarkSustainedIngest drives a sustained mixed update stream (80%
// element inserts under random live parents, 10% deletes, 10% retags, in
// batches of 8 ops per commit) against one store and reports the renumber
// frequency — the quantity the gap-aware coding scheme exists to suppress.
// Run both arms and compare renumbers/kop:
//
//	go test -run '^$' -bench BenchmarkSustainedIngest -benchtime 200x ./internal/ingest/
func BenchmarkSustainedIngest(b *testing.B) {
	for _, gap := range []bool{false, true} {
		name := "naive"
		if gap {
			name = "gap-aware"
		}
		b.Run(name, func(b *testing.B) {
			benchSustainedIngest(b, gap)
		})
	}
}

const benchBatch = 8

func benchSustainedIngest(b *testing.B, gap bool) {
	dir := b.TempDir()
	base := buildBaseDB(b, dir, map[string]string{
		"d0": `<r0><a><b/><c/></a><a><b/></a></r0>`,
		"d1": `<r1><x><y/></x><x><y/><z/></x></r1>`,
	})
	s, err := Open(Config{DBPath: base, GapAware: gap, Headroom: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	rng := rand.New(rand.NewSource(99))

	// randomCode picks a live non-root element code, refreshed under the
	// store lock (renumbering moves codes between batches). Half the picks
	// land on the hot tag — ingest streams are skewed (one feed, one hot
	// container), and parent skew is what saturates slot ranges.
	randomCode := func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if rng.Intn(2) == 0 {
			if hot := s.forest.Codes("a"); len(hot) > 0 {
				return uint64(hot[rng.Intn(len(hot))])
			}
		}
		var all []uint64
		for tag := range s.forest.Tags() {
			if tag == s.forest.Root.Tag {
				continue
			}
			for _, c := range s.forest.Codes(tag) {
				if e := s.forest.ByCode(c); e != nil && e.Parent != nil && e.Parent != s.forest.Root {
					all = append(all, uint64(c))
				}
			}
		}
		if len(all) == 0 {
			return 0
		}
		return all[rng.Intn(len(all))]
	}

	applied, rolledBack := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ops []Op
		for j := 0; j < benchBatch; j++ {
			switch r := rng.Intn(10); {
			case r < 8:
				if c := randomCode(); c != 0 {
					ops = append(ops, Op{Op: "insert_element", Parent: c, Tag: fmt.Sprintf("t%d", rng.Intn(6))})
				}
			case r < 9:
				if c := randomCode(); c != 0 {
					if e := elementAt(s, c); e != nil && len(e.Children) == 0 {
						ops = append(ops, Op{Op: "delete_element", Code: c})
						continue
					}
				}
				ops = append(ops, Op{Op: "insert_element", Parent: randomCode(), Tag: "t0"})
			default:
				if c := randomCode(); c != 0 {
					ops = append(ops, Op{Op: "update_element", Code: c, Tag: fmt.Sprintf("u%d", rng.Intn(4))})
				}
			}
		}
		if len(ops) == 0 {
			continue
		}
		// A batch can legitimately conflict with itself (delete an element,
		// then address its descendant); the store rolls it back atomically
		// and the stream moves on, like a real writer would.
		if _, err := s.Apply(ops); err != nil {
			rolledBack++
			continue
		}
		applied += len(ops)
	}
	b.StopTimer()
	st := s.Stats()
	if applied > 0 {
		kops := float64(applied) / 1000
		b.ReportMetric(float64(st.RenumbersScoped)/kops, "renumScoped/kop")
		b.ReportMetric(float64(st.RenumbersGlobal)/kops, "renumGlobal/kop")
		b.ReportMetric(float64(st.OverflowInserts)/kops, "overflow/kop")
		b.ReportMetric(float64(rolledBack), "rollbacks")
	}
}

func elementAt(s *Store, code uint64) *xmltree.Element {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.forest.ByCode(pbicode.Code(code))
}
