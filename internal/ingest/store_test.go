package ingest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/pbitree/pbitree/containment"
	"github.com/pbitree/pbitree/pbicode"
	"github.com/pbitree/pbitree/xmltree"
)

// buildBaseDB saves a self-contained v1 database from named XML documents,
// the way `pbidb build` does: one relation per tag plus the document
// catalog.
func buildBaseDB(t testing.TB, dir string, docs map[string]string) string {
	t.Helper()
	coll := xmltree.NewCollection()
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := coll.AddDocument(name, strings.NewReader(docs[name]), xmltree.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "base.pbidb")
	eng, err := containment.NewEngine(containment.Config{
		Path: path, PageSize: 512, BufferPages: 64, TreeHeight: coll.Height(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var rels []*containment.Relation
	var tags []string
	for tag := range coll.Document().Tags() {
		if strings.HasPrefix(tag, "#") {
			continue
		}
		r, err := eng.Load(relPrefix+tag, coll.Codes(tag))
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r)
		tags = append(tags, tag)
	}
	var infos []containment.DocInfo
	for _, name := range coll.Names() {
		root, err := coll.RootCode(name)
		if err != nil {
			t.Fatal(err)
		}
		var elems int64
		for _, tag := range tags {
			codes, err := coll.CodesIn(name, tag)
			if err != nil {
				t.Fatal(err)
			}
			elems += int64(len(codes))
		}
		infos = append(infos, containment.DocInfo{Name: name, Root: root, Elements: elems})
	}
	if err := eng.SaveDocs(infos, rels...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// storedTagCodes reopens the store's current epoch read-only and returns
// every stored (tag, code) pair, for comparison against the live forest.
func storedTagCodes(t testing.TB, s *Store) map[string][]uint64 {
	t.Helper()
	_, path := s.CurrentEpoch()
	eng, rels, err := containment.Open(containment.Config{Path: path, ReadOnly: true, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	out := map[string][]uint64{}
	for name, r := range rels {
		if !strings.HasPrefix(name, relPrefix) {
			continue
		}
		codes, err := r.Codes()
		if err != nil {
			t.Fatal(err)
		}
		us := make([]uint64, len(codes))
		for i, c := range codes {
			us[i] = uint64(c)
		}
		sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
		out[strings.TrimPrefix(name, relPrefix)] = us
	}
	return out
}

// forestTagCodes snapshots the live forest's (tag, code) pairs.
func forestTagCodes(s *Store) map[string][]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string][]uint64{}
	for tag := range s.forest.Tags() {
		if tag == s.forest.Root.Tag {
			continue
		}
		var us []uint64
		for _, c := range s.forest.Codes(tag) {
			us = append(us, uint64(c))
		}
		if len(us) == 0 {
			continue // retag/delete can leave an empty tag bucket behind
		}
		sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
		out[tag] = us
	}
	return out
}

func assertStoreMatchesEpoch(t *testing.T, s *Store) {
	t.Helper()
	want := forestTagCodes(s)
	got := storedTagCodes(t, s)
	if len(got) != len(want) {
		t.Fatalf("stored %d tag relations, forest has %d: stored=%v forest=%v",
			len(got), len(want), keys(got), keys(want))
	}
	for tag, w := range want {
		g, ok := got[tag]
		if !ok {
			t.Fatalf("tag %q missing from stored epoch", tag)
		}
		if len(g) != len(w) {
			t.Fatalf("tag %q: stored %d codes, forest %d", tag, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("tag %q code %d: stored %d forest %d", tag, i, g[i], w[i])
			}
		}
	}
}

func keys(m map[string][]uint64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var baseDocs = map[string]string{
	"books": `<lib><book><title/><author/></book><book><title/></book></lib>`,
	"news":  `<feed><item><title/></item><item><title/><body/></item></feed>`,
}

func openStore(t *testing.T, cfg Config) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	base := buildBaseDB(t, dir, baseDocs)
	cfg.DBPath = base
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() }) //nolint:errcheck
	return s, base
}

func TestApplyLifecycle(t *testing.T) {
	s, _ := openStore(t, Config{GapAware: true})
	if ep, _ := s.CurrentEpoch(); ep != 0 {
		t.Fatalf("fresh store at epoch %d", ep)
	}

	// Insert a document: epoch 1, forest and stored codes agree.
	res, err := s.Apply([]Op{{Op: "insert_doc", Doc: "mail", XML: `<mbox><msg><subj/></msg></mbox>`}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.Applied != 1 {
		t.Fatalf("commit result %+v", res)
	}
	assertStoreMatchesEpoch(t, s)
	st := s.Stats()
	if st.Documents != 3 || st.Epoch != 1 {
		t.Fatalf("stats after insert_doc: %+v", st)
	}

	// The new document is queryable from the published epoch: mbox contains
	// msg contains subj.
	_, path := s.CurrentEpoch()
	eng, rels, err := containment.Open(containment.Config{Path: path, ReadOnly: true, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	resJoin, err := eng.Join(rels["tag:mbox"], rels["tag:subj"], containment.JoinOptions{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resJoin.Pairs) != 1 {
		t.Fatalf("mbox⊐subj join: %d pairs, want 1", len(resJoin.Pairs))
	}
	eng.Close()

	// Insert an element under an existing one, retag it, then delete it.
	s.mu.Lock()
	var msg *xmltree.Element
	for _, e := range s.forest.Elements("msg") {
		msg = e
	}
	s.mu.Unlock()
	res, err = s.Apply([]Op{{Op: "insert_element", Parent: uint64(msg.Code), Tag: "cc"}})
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatchesEpoch(t, s)
	s.mu.Lock()
	cc := s.forest.Elements("cc")[0]
	ccCode := uint64(cc.Code)
	s.mu.Unlock()
	if got := s.DocFor(ccCode); got != "mail" {
		t.Fatalf("DocFor(cc) = %q, want mail", got)
	}
	if _, err = s.Apply([]Op{{Op: "update_element", Code: ccCode, Tag: "bcc"}}); err != nil {
		t.Fatal(err)
	}
	assertStoreMatchesEpoch(t, s)
	if _, err = s.Apply([]Op{{Op: "delete_element", Code: ccCode}}); err != nil {
		t.Fatal(err)
	}
	assertStoreMatchesEpoch(t, s)

	// Delete the document; its tags vanish from the catalog.
	if _, err = s.Apply([]Op{{Op: "delete_doc", Doc: "mail"}}); err != nil {
		t.Fatal(err)
	}
	assertStoreMatchesEpoch(t, s)
	if got := storedTagCodes(t, s); got["mbox"] != nil {
		t.Fatalf("deleted document's tag still stored: %v", got["mbox"])
	}
	st = s.Stats()
	if st.Documents != 2 {
		t.Fatalf("documents after delete_doc: %d", st.Documents)
	}
	// The start index tracks the element count exactly.
	if got, want := s.IndexKeys(), int64(st.Elements); got != want {
		t.Fatalf("start index has %d keys, want %d", got, want)
	}

	// Epoch history is published in the manifest.
	eps := s.Epochs()
	if len(eps) == 0 || eps[len(eps)-1].Epoch != 5 {
		t.Fatalf("epochs: %+v", eps)
	}
}

func TestApplyRollback(t *testing.T) {
	s, _ := openStore(t, Config{GapAware: true})
	before := forestTagCodes(s)
	ep0, _ := s.CurrentEpoch()

	_, err := s.Apply([]Op{
		{Op: "insert_doc", Doc: "x", XML: `<x><y/></x>`}, // fine
		{Op: "delete_doc", Doc: "no-such-doc"},           // fails
	})
	if err == nil {
		t.Fatal("bad batch committed")
	}
	if ep, _ := s.CurrentEpoch(); ep != ep0 {
		t.Fatalf("failed batch advanced the epoch: %d -> %d", ep0, ep)
	}
	after := forestTagCodes(s)
	if len(after) != len(before) {
		t.Fatalf("rollback left forest changed: %v vs %v", keys(after), keys(before))
	}
	for tag, w := range before {
		g := after[tag]
		if len(g) != len(w) {
			t.Fatalf("rollback: tag %q has %d codes, want %d", tag, len(g), len(w))
		}
	}
	// The store still works after a rollback.
	if _, err := s.Apply([]Op{{Op: "insert_doc", Doc: "x", XML: `<x><y/></x>`}}); err != nil {
		t.Fatal(err)
	}
	assertStoreMatchesEpoch(t, s)
}

func TestApplyValidation(t *testing.T) {
	s, _ := openStore(t, Config{})
	s.mu.Lock()
	collectionRoot := uint64(s.forest.Root.Code)
	docRoot := uint64(s.docs[0].root.Code)
	s.mu.Unlock()
	cases := [][]Op{
		{},
		{{Op: "no_such_op"}},
		{{Op: "insert_doc", Doc: "books", XML: `<a/>`}},            // duplicate name
		{{Op: "insert_doc", Doc: "z"}},                             // no payload
		{{Op: "insert_element", Parent: 12345, Tag: "t"}},          // unknown parent
		{{Op: "insert_element", Parent: collectionRoot, Tag: "t"}}, // collection root
		{{Op: "delete_element", Code: docRoot}},                    // doc root
		{{Op: "update_element", Code: docRoot + 999999}},           // missing tag + unknown
	}
	for i, ops := range cases {
		if _, err := s.Apply(ops); err == nil {
			t.Fatalf("case %d: invalid batch %v accepted", i, ops)
		}
	}
	if ep, _ := s.CurrentEpoch(); ep != 0 {
		t.Fatalf("invalid batches advanced the epoch to %d", ep)
	}
}

func TestCompactionFoldsChain(t *testing.T) {
	s, base := openStore(t, Config{GapAware: true, Keep: 1})
	for i := 0; i < 4; i++ {
		xml := fmt.Sprintf(`<d%d><e%d/></d%d>`, i, i, i)
		if _, err := s.Apply([]Op{{Op: "insert_doc", Doc: fmt.Sprintf("doc%d", i), XML: xml}}); err != nil {
			t.Fatal(err)
		}
	}
	before := forestTagCodes(s)
	st := s.Stats()
	if st.ChainLen == 0 {
		t.Fatalf("no delta chain before compaction: %+v", st)
	}

	if err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Compactions != 1 || st.ChainLen != 0 || st.Epoch != 5 {
		t.Fatalf("after compaction: %+v", st)
	}
	_, cur := s.CurrentEpoch()
	if !strings.Contains(filepath.Base(cur), "compact-") {
		t.Fatalf("current epoch is not the compacted base: %s", cur)
	}
	// The compacted base is self-contained (v1): opens with no delta chain,
	// same content.
	eng, _, err := containment.Open(containment.Config{Path: cur, ReadOnly: true, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.DeltaChain()) != 0 {
		t.Fatalf("compacted base has a delta chain: %v", eng.DeltaChain())
	}
	eng.Close()
	got := storedTagCodes(t, s)
	for tag, w := range before {
		g := got[tag]
		if len(g) != len(w) {
			t.Fatalf("compaction changed tag %q: %d codes, want %d", tag, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("compaction changed tag %q code %d", tag, i)
			}
		}
	}
	// CompactNow on a fresh base has nothing to fold.
	if err := s.CompactNow(); err == nil {
		t.Fatal("compacted an empty chain")
	}

	// More commits retire old epochs past Keep; their delta files are
	// garbage-collected, the original database never is.
	for i := 4; i < 8; i++ {
		xml := fmt.Sprintf(`<d%d><e%d/></d%d>`, i, i, i)
		if _, err := s.Apply([]Op{{Op: "insert_doc", Doc: fmt.Sprintf("doc%d", i), XML: xml}}); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.Epochs()) != 2 { // Keep=1 retired + current
		t.Fatalf("epochs retained: %+v", s.Epochs())
	}
	if _, err := os.Stat(filepath.Join(s.dir, "epoch-000001.pbidb.delta")); !os.IsNotExist(err) {
		t.Fatalf("retired epoch delta not collected: %v", err)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("original database harmed: %v", err)
	}
	// Everything still opens and matches.
	assertStoreMatchesEpoch(t, s)
}

func TestCompactionDaemonAndAbort(t *testing.T) {
	s, _ := openStore(t, Config{
		GapAware: true, CompactAfter: 2, CompactInterval: 20 * time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		xml := fmt.Sprintf(`<d%d><e%d/></d%d>`, i, i, i)
		if _, err := s.Apply([]Op{{Op: "insert_doc", Doc: fmt.Sprintf("doc%d", i), XML: xml}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.Compactions >= 1 && st.ChainLen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never compacted: %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	assertStoreMatchesEpoch(t, s)

	// A commit racing past the fold aborts the stale compaction: simulate by
	// folding from a snapshot, then publishing a commit before re-locking.
	if _, err := s.Apply([]Op{{Op: "insert_doc", Doc: "race-a", XML: `<ra><rb/></ra>`}}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	srcEpoch, srcPath := s.man.Current, s.cur
	s.mu.Unlock()
	dst := filepath.Join(s.dir, fmt.Sprintf("compact-%06d.pbidb", srcEpoch+1))
	if _, _, err := s.fold(srcPath, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{{Op: "insert_doc", Doc: "race-b", XML: `<rc><rd/></rc>`}}); err != nil {
		t.Fatal(err)
	}
	// Re-run the publish arm the way CompactNow would: it must detect the
	// newer epoch. (CompactNow refolds from scratch; calling it now sees the
	// new current and succeeds, so check the guard directly.)
	s.mu.Lock()
	stale := s.man.Current != srcEpoch
	s.mu.Unlock()
	if !stale {
		t.Fatal("racing commit did not advance the epoch")
	}
	removeDBFiles(dst)
}

func TestGapAwareReducesRenumbering(t *testing.T) {
	renumbers := func(gap bool) uint64 {
		dir := t.TempDir()
		base := buildBaseDB(t, dir, map[string]string{
			"seed": `<root><hot><a/></hot><cold/></root>`,
		})
		s, err := Open(Config{DBPath: base, GapAware: gap, Headroom: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close() //nolint:errcheck
		// Sustained inserts under one hot parent: the naive packing has no
		// slack, so every few inserts force a renumber; gap-aware headroom
		// plus the overflow region amortizes them.
		rng := rand.New(rand.NewSource(7))
		var hot uint64
		s.mu.Lock()
		hot = uint64(s.forest.Elements("hot")[0].Code)
		s.mu.Unlock()
		for i := 0; i < 60; i++ {
			ops := []Op{{Op: "insert_element", Parent: hot, Tag: fmt.Sprintf("t%d", rng.Intn(8))}}
			if _, err := s.Apply(ops); err != nil {
				t.Fatal(err)
			}
			// Renumbering may have moved the hot parent; chase it.
			s.mu.Lock()
			hot = uint64(s.forest.Elements("hot")[0].Code)
			s.mu.Unlock()
		}
		st := s.Stats()
		return st.RenumbersScoped + st.RenumbersGlobal
	}
	naive := renumbers(false)
	gap := renumbers(true)
	t.Logf("renumbers over 60 hot-parent inserts: naive=%d gap-aware=%d", naive, gap)
	if gap >= naive {
		t.Fatalf("gap-aware coding did not reduce renumbering: naive=%d gap=%d", naive, gap)
	}
}

func TestReopenResumesEpochFamily(t *testing.T) {
	dir := t.TempDir()
	base := buildBaseDB(t, dir, baseDocs)
	s, err := Open(Config{DBPath: base, GapAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Op{{Op: "insert_doc", Doc: "extra", XML: `<ex><ey/></ex>`}}); err != nil {
		t.Fatal(err)
	}
	want := forestTagCodes(s)
	ep, _ := s.CurrentEpoch()
	s.Close() //nolint:errcheck

	// A second Open resumes from the manifest, not from epoch 0.
	s2, err := Open(Config{DBPath: base, GapAware: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck
	if ep2, _ := s2.CurrentEpoch(); ep2 != ep {
		t.Fatalf("reopen at epoch %d, want %d", ep2, ep)
	}
	got := forestTagCodes(s2)
	for tag, w := range want {
		g := got[tag]
		if len(g) != len(w) {
			t.Fatalf("reopen: tag %q has %d codes, want %d", tag, len(g), len(w))
		}
	}
	st := s2.Stats()
	if st.Documents != 3 {
		t.Fatalf("reopen lost documents: %+v", st)
	}
	// Document names survive via the catalog.
	if got := s2.DocFor(uint64(docRootCode(t, s2, "extra"))); got != "extra" {
		t.Fatalf("DocFor(extra root) = %q", got)
	}
}

func docRootCode(t *testing.T, s *Store, name string) pbicode.Code {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.docs {
		if d.name == name {
			return d.root.Code
		}
	}
	t.Fatalf("no document %q", name)
	return 0
}
