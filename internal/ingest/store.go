package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pbitree/pbitree/containment"
	"github.com/pbitree/pbitree/internal/btree"
	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
	"github.com/pbitree/pbitree/xmltree"
)

// relPrefix namespaces tag relations in the catalog (mirrors cmd/pbidb).
const relPrefix = "tag:"

// Config configures a Store.
type Config struct {
	// DBPath is the self-contained (version-1) database the epoch family
	// grows from; its ".epochs" sibling directory holds everything ingest
	// writes. The original database is never modified or deleted.
	DBPath string
	// GapAware enables the gap-aware coding scheme: re-encodes reserve
	// Headroom extra slot levels (2^Headroom× the minimal sibling ranges)
	// and per-parent slot ranges keep their last quarter as an overflow
	// region, taken only when the primary region is exhausted. Off, the
	// naive scheme packs minimally (headroom 0, pure first-fit) — the
	// baseline the sustained-ingest benchmark compares against.
	GapAware bool
	// Headroom is the slot headroom used by gap-aware re-encodes
	// (default 2; ignored when GapAware is off).
	Headroom int
	// ParseOptions parses insert_doc payloads (match what built the base).
	ParseOptions xmltree.Options
	// BufferPages sizes the buffer pool of commit/compaction engines.
	BufferPages int
	// CompactAfter starts the compaction daemon: when the delta chain
	// reaches this many files, the chain is folded into a fresh
	// self-contained base. 0 disables the daemon (CompactNow still works).
	CompactAfter int
	// CompactPagesPerSec caps the compaction daemon's write rate in pages
	// per second; 0 is unthrottled.
	CompactPagesPerSec int
	// CompactInterval is the daemon's poll period (default 2s).
	CompactInterval time.Duration
	// Keep is how many retired epochs stay published for draining readers
	// before garbage collection (default 2; the current epoch is always
	// kept).
	Keep int
}

// BatchError reports a rejected batch: the operations themselves were
// invalid (unknown code, duplicate document, bad XML, ...) and the store
// rolled back cleanly without publishing — a client problem. Commit and
// rollback failures stay plain errors (a server problem).
type BatchError struct{ Err error }

func (e *BatchError) Error() string { return e.Err.Error() }
func (e *BatchError) Unwrap() error { return e.Err }

// Op is one ingest operation. Codes address elements of the current epoch
// (as returned by queries against it).
type Op struct {
	// Op is one of: insert_doc, delete_doc, insert_element,
	// delete_element, update_element.
	Op string `json:"op"`
	// Doc names the document (insert_doc, delete_doc).
	Doc string `json:"doc,omitempty"`
	// XML is the document payload (insert_doc).
	XML string `json:"xml,omitempty"`
	// Parent is the parent element's code (insert_element).
	Parent uint64 `json:"parent,omitempty"`
	// Code is the target element's code (delete_element, update_element).
	Code uint64 `json:"code,omitempty"`
	// Tag is the new element's tag (insert_element) or the new tag
	// (update_element).
	Tag string `json:"tag,omitempty"`
}

// CommitResult describes one published epoch.
type CommitResult struct {
	Epoch   int64  `json:"epoch"`
	Path    string `json:"path"`
	Applied int    `json:"applied"`
	// RenumbersScoped / RenumbersGlobal count the re-encodes this batch
	// forced (scoped subtree renumbering vs whole-collection).
	RenumbersScoped uint64 `json:"renumbers_scoped"`
	RenumbersGlobal uint64 `json:"renumbers_global"`
}

// Stats is a point-in-time snapshot of the store's gauges and counters.
type Stats struct {
	Epoch     int64 `json:"epoch"`
	ChainLen  int   `json:"chain_len"`
	Documents int   `json:"documents"`
	Elements  int   `json:"elements"`

	Commits         uint64 `json:"commits"`
	Inserts         uint64 `json:"inserts"`
	Updates         uint64 `json:"updates"`
	Deletes         uint64 `json:"deletes"`
	RenumbersScoped uint64 `json:"renumbers_scoped"`
	RenumbersGlobal uint64 `json:"renumbers_global"`
	OverflowInserts uint64 `json:"overflow_inserts"`
	Compactions     uint64 `json:"compactions"`
	CompactAborts   uint64 `json:"compact_aborts"`
	CompactedPages  uint64 `json:"compacted_pages"`
	IdxInserts      uint64 `json:"idx_inserts"`
	IdxDeletes      uint64 `json:"idx_deletes"`
	IdxRebuilds     uint64 `json:"idx_rebuilds"`
}

// docState tracks one live document of the forest by identity (codes may
// change under renumbering; the element pointer does not).
type docState struct {
	name string
	root *xmltree.Element
}

// Store is the live write path over one database's epoch family. All
// methods are safe for concurrent use; Apply batches are serialized.
type Store struct {
	cfg Config
	dir string // epochs directory

	mu     sync.Mutex
	man    *Manifest
	cur    string // current epoch's database path
	chain  int    // delta-chain length of the current epoch
	forest *xmltree.Document
	docs   []docState
	// docSpans is the interval index over document regions, sorted by
	// start — DocFor resolves codes to documents with a binary search.
	docSpans []docSpan
	// startIdx is the incrementally-maintained B+-tree over every stored
	// element (key = region start, value = code), the live counterpart of
	// the serving side's start index: per-op inserts and deletes keep it
	// current, scoped renumbers patch the affected subtree, and only a
	// global re-encode rebuilds it from scratch.
	idxDisk *storage.MemDisk
	idxPool *buffer.Pool
	idx     *btree.Tree
	// dirty tags since the last commit; dirtyAll after a global re-encode.
	dirty    map[string]bool
	dirtyAll bool
	closed   bool

	onPublish func(epoch int64, path string)

	stop chan struct{}
	done chan struct{}

	commits, inserts, updates, deletes  atomic.Uint64
	renumScoped, renumGlobal, overflow  atomic.Uint64
	compactions, compactAborts          atomic.Uint64
	compactedPages                      atomic.Uint64
	idxInserts, idxDeletes, idxRebuilds atomic.Uint64
}

type docSpan struct {
	start, end uint64
	doc        *docState
}

// Open attaches a Store to the database at cfg.DBPath, creating or
// resuming its epochs directory, and starts the compaction daemon when
// configured. The database must have been saved by pbidb build (tag
// relations with a full tag set): the in-memory forest is reconstructed
// from the stored (tag, code) pairs, which requires every element present.
func Open(cfg Config) (*Store, error) {
	if cfg.DBPath == "" {
		return nil, fmt.Errorf("ingest: Config.DBPath required")
	}
	if cfg.Headroom <= 0 {
		cfg.Headroom = 2
	}
	if cfg.BufferPages <= 0 {
		cfg.BufferPages = 1024
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 2
	}
	if cfg.CompactInterval <= 0 {
		cfg.CompactInterval = 2 * time.Second
	}
	dir := epochsDir(cfg.DBPath)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: create epochs dir: %w", err)
	}
	// Sweep fold scraps from a compaction that died mid-write; no daemon is
	// running yet, so nothing here is live.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, ent := range ents {
			if !ent.IsDir() && strings.HasPrefix(ent.Name(), ".tmp-") {
				os.Remove(filepath.Join(dir, ent.Name())) //nolint:errcheck // best-effort
			}
		}
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if man == nil {
		rel, err := filepath.Rel(dir, cfg.DBPath)
		if err != nil {
			return nil, fmt.Errorf("ingest: database not addressable from its epochs dir: %w", err)
		}
		man = &Manifest{Current: 0, Epochs: []EpochEntry{{Epoch: 0, Path: rel}}}
		if err := man.save(dir); err != nil {
			return nil, err
		}
	}
	cur := man.entry(man.Current)
	if cur == nil {
		return nil, fmt.Errorf("ingest: manifest current epoch %d has no entry", man.Current)
	}
	s := &Store{
		cfg:  cfg,
		dir:  dir,
		man:  man,
		cur:  resolve(dir, cur),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := s.reload(); err != nil {
		return nil, err
	}
	if cfg.CompactAfter > 0 {
		go s.compactor()
	} else {
		close(s.done)
	}
	return s, nil
}

// Close stops the compaction daemon. In-flight Apply calls finish first.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	return nil
}

// SetOnPublish installs a hook called after every epoch publication
// (ingest commit or compaction) with the new epoch and its database path.
// The hook runs outside the store's lock; the serving tier uses it to swap
// workers and invalidate epoch-keyed caches.
func (s *Store) SetOnPublish(fn func(epoch int64, path string)) {
	s.mu.Lock()
	s.onPublish = fn
	s.mu.Unlock()
}

// CurrentEpoch returns the published epoch number and its database path.
func (s *Store) CurrentEpoch() (int64, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Current, s.cur
}

// Epochs returns the published manifest entries, oldest first.
func (s *Store) Epochs() []EpochEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]EpochEntry(nil), s.man.Epochs...)
}

// Stats returns a snapshot of the store's gauges and counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Epoch:     s.man.Current,
		ChainLen:  s.chain,
		Documents: len(s.docs),
	}
	if s.forest != nil {
		st.Elements = s.forest.NumElements() - 1 // minus the synthetic root
	}
	s.mu.Unlock()
	st.Commits = s.commits.Load()
	st.Inserts = s.inserts.Load()
	st.Updates = s.updates.Load()
	st.Deletes = s.deletes.Load()
	st.RenumbersScoped = s.renumScoped.Load()
	st.RenumbersGlobal = s.renumGlobal.Load()
	st.OverflowInserts = s.overflow.Load()
	st.Compactions = s.compactions.Load()
	st.CompactAborts = s.compactAborts.Load()
	st.CompactedPages = s.compactedPages.Load()
	st.IdxInserts = s.idxInserts.Load()
	st.IdxDeletes = s.idxDeletes.Load()
	st.IdxRebuilds = s.idxRebuilds.Load()
	return st
}

// reload rebuilds the in-memory state (forest, documents, start index)
// from the current epoch — the open path, and the rollback path when an
// operation in a batch fails after earlier ones already mutated the
// forest.
func (s *Store) reload() error {
	eng, rels, err := containment.Open(containment.Config{
		Path: s.cur, ReadOnly: true, BufferPages: s.cfg.BufferPages,
	})
	if err != nil {
		return fmt.Errorf("ingest: open epoch database: %w", err)
	}
	defer eng.Close()
	var elems []xmltree.TaggedCode
	for name, r := range rels {
		if !strings.HasPrefix(name, relPrefix) {
			continue
		}
		tag := strings.TrimPrefix(name, relPrefix)
		codes, err := r.Codes()
		if err != nil {
			return fmt.Errorf("ingest: read relation %s: %w", name, err)
		}
		for _, c := range codes {
			elems = append(elems, xmltree.TaggedCode{Tag: tag, Code: c})
		}
	}
	forest, err := xmltree.FromCodes(eng.TreeHeight(), elems)
	if err != nil {
		return fmt.Errorf("ingest: reconstruct forest (was the database built with a full tag set?): %w", err)
	}
	// Match catalog document names to forest roots by root code; roots the
	// catalog does not name get stable synthetic names.
	byRoot := map[pbicode.Code]string{}
	for _, d := range eng.Documents() {
		byRoot[d.Root] = d.Name
	}
	var docs []docState
	for i, root := range forest.DocumentRoots() {
		name, ok := byRoot[root.Code]
		if !ok {
			name = fmt.Sprintf("doc-%04d", i)
		}
		docs = append(docs, docState{name: name, root: root})
	}
	s.forest = forest
	s.docs = docs
	s.chain = len(eng.DeltaChain())
	s.dirty = map[string]bool{}
	s.dirtyAll = false
	s.rebuildDocSpans()
	s.rebuildIndex()
	return nil
}

// rebuildDocSpans refreshes the interval index over document regions.
func (s *Store) rebuildDocSpans() {
	s.docSpans = s.docSpans[:0]
	for i := range s.docs {
		d := &s.docs[i]
		s.docSpans = append(s.docSpans, docSpan{
			start: d.root.Code.Start(), end: d.root.Code.End(), doc: d,
		})
	}
	sort.Slice(s.docSpans, func(i, j int) bool { return s.docSpans[i].start < s.docSpans[j].start })
}

// docFor resolves a code to the document whose region contains it.
func (s *Store) docFor(c pbicode.Code) *docState {
	start := c.Start()
	i := sort.Search(len(s.docSpans), func(i int) bool { return s.docSpans[i].start > start })
	if i == 0 {
		return nil
	}
	if sp := s.docSpans[i-1]; c.End() <= sp.end {
		return sp.doc
	}
	return nil
}

// rebuildIndex reconstructs the start B+-tree from the whole forest (open
// and global-re-encode path).
func (s *Store) rebuildIndex() {
	if s.idxDisk != nil {
		s.idxDisk.Close()
	}
	s.idxDisk = storage.NewMemDisk(0, storage.CostModel{})
	s.idxPool = buffer.New(s.idxDisk, 256)
	t, err := btree.New(s.idxPool)
	if err != nil {
		// MemDisk with the default page size cannot fail page allocation.
		panic(fmt.Sprintf("ingest: start index: %v", err))
	}
	s.idx = t
	s.forest.Walk(func(e *xmltree.Element) bool {
		if e.Parent != nil {
			if err := s.idx.Insert(e.Code.Start(), uint64(e.Code)); err != nil {
				panic(fmt.Sprintf("ingest: start index insert: %v", err))
			}
		}
		return true
	})
	s.idxRebuilds.Add(1)
}

// idxInsertSubtree / idxDeleteCodes maintain the start index around
// forest mutations.
func (s *Store) idxInsertSubtree(e *xmltree.Element) error {
	var err error
	walk(e, func(x *xmltree.Element) {
		if err == nil {
			err = s.idx.Insert(x.Code.Start(), uint64(x.Code))
			s.idxInserts.Add(1)
		}
	})
	return err
}

func (s *Store) idxDeleteCodes(codes []pbicode.Code) error {
	for _, c := range codes {
		ok, err := s.idx.Delete(c.Start(), uint64(c))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("ingest: start index lost code %v", c)
		}
		s.idxDeletes.Add(1)
	}
	return nil
}

func walk(e *xmltree.Element, fn func(*xmltree.Element)) {
	fn(e)
	for _, c := range e.Children {
		walk(c, fn)
	}
}

func subtreeCodes(e *xmltree.Element) []pbicode.Code {
	var out []pbicode.Code
	walk(e, func(x *xmltree.Element) { out = append(out, x.Code) })
	return out
}

// headroom is the re-encode slot headroom under the active coding scheme.
func (s *Store) headroom() int {
	if s.cfg.GapAware {
		return s.cfg.Headroom
	}
	return 0
}

// pickSlot chooses a sibling slot under the active coding scheme: naive is
// pure first-fit; gap-aware first-fits within the primary region (the
// first three quarters) and spills into the reserved overflow quarter only
// when the primary is exhausted, so bursts on a hot parent defer
// renumbering instead of forcing it.
func (s *Store) pickSlot(si xmltree.SlotInfo, after uint64) (uint64, bool) {
	if si.Capacity == 0 {
		return 0, false
	}
	primary := si.Capacity
	if s.cfg.GapAware && si.Capacity >= 4 {
		primary = si.Capacity - si.Capacity/4
	}
	for slot := after; slot < primary; slot++ {
		if !si.Used[slot] {
			return slot, true
		}
	}
	for slot := max64(after, primary); slot < si.Capacity; slot++ {
		if !si.Used[slot] {
			s.overflow.Add(1)
			return slot, true
		}
	}
	return 0, false
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// graft inserts a detached subtree under parent, walking the renumber
// ladder on exhaustion: free virtual slots first, then a scoped subtree
// renumbering of the parent, then a whole-forest re-encode with the
// subtree structurally attached (the only rung that can add PBiTree levels
// below a parent at the bottom of the tree). Gap-aware, the subtree itself
// is binarized with headroom (so inserts inside it later find slots),
// dropping to minimal packing before resorting to renumbering.
func (s *Store) graft(parent *xmltree.Element, root *xmltree.Element) error {
	headrooms := []int{s.headroom()}
	if s.headroom() != 0 {
		headrooms = append(headrooms, 0)
	}
	trySlots := func() (bool, error) {
		for _, hr := range headrooms {
			si, err := s.forest.Slots(parent)
			if err != nil {
				return false, err
			}
			for after := uint64(0); ; {
				slot, ok := s.pickSlot(si, after)
				if !ok {
					break
				}
				err := s.forest.InsertSubtreeSlot(parent, root, hr, slot)
				if err == nil {
					return true, s.idxInsertSubtree(root)
				}
				if !errors.Is(err, xmltree.ErrNoFreeSlot) {
					return false, err
				}
				// Slot too shallow for this subtree; try the next one.
				after = slot + 1
			}
		}
		return false, nil
	}
	if ok, err := trySlots(); ok || err != nil {
		return err
	}
	if parent.Parent != nil {
		if err := s.renumberScoped(parent); err == nil {
			if ok, err := trySlots(); ok || err != nil {
				return err
			}
		} else if !errors.Is(err, xmltree.ErrNoFreeSlot) {
			return err
		}
	}
	// Final rung: attach structurally and re-encode the whole forest.
	// Reencode derives codes and indexes from the element structure alone,
	// so the new subtree is coded and indexed along with everything else;
	// headroom can overflow the 63-level code space on deep forests, so
	// fall back to a minimal re-encode before giving up.
	root.Parent = parent
	parent.Children = append(parent.Children, root)
	err := s.forest.Reencode(s.renumberHeadroom())
	if err != nil {
		err = s.forest.Reencode(0)
	}
	if err != nil {
		parent.Children = parent.Children[:len(parent.Children)-1]
		root.Parent = nil
		return fmt.Errorf("ingest: no room for subtree under %v: %w", parent.Code, err)
	}
	s.renumGlobal.Add(1)
	s.dirtyAll = true
	s.rebuildDocSpans()
	s.rebuildIndex()
	return nil
}

// renumberHeadroom is the slot headroom re-encodes use. Never below 1:
// a minimal (headroom-0) re-encode of a parent whose child count is an
// exact power of two reproduces the same full slot range and makes no
// progress, so even the naive scheme must at least double the range it is
// renumbering to fit the incoming insert.
func (s *Store) renumberHeadroom() int {
	if h := s.headroom(); h > 1 {
		return h
	}
	return 1
}

// renumberScoped re-encodes parent's subtree in place with headroom and
// patches the dirty set and start index. ErrNoFreeSlot propagates when
// parent's region is too shallow for the widened subtree — the caller
// escalates to a global re-encode.
func (s *Store) renumberScoped(parent *xmltree.Element) error {
	old := subtreeCodes(parent)
	if err := s.forest.RenumberSubtree(parent, s.renumberHeadroom()); err != nil {
		return err
	}
	s.renumScoped.Add(1)
	s.markSubtreeDirty(parent)
	if err := s.idxDeleteCodes(old); err != nil {
		return err
	}
	return s.idxInsertSubtree(parent)
}

func (s *Store) markSubtreeDirty(e *xmltree.Element) {
	walk(e, func(x *xmltree.Element) { s.dirty[x.Tag] = true })
	s.rebuildDocSpans()
}

// resolvedOp pairs an operation with its target element, looked up before
// the batch mutates anything: renumbering inside a batch moves codes, but
// element identity is stable, so every op addresses the element its code
// named in the epoch the client saw.
type resolvedOp struct {
	op Op
	el *xmltree.Element // parent (insert_element) or target (delete/update)
}

// resolve looks up a batch's codes against the un-mutated forest. Called
// with mu held, before the first apply.
func (s *Store) resolve(ops []Op) ([]resolvedOp, error) {
	rops := make([]resolvedOp, len(ops))
	for i, op := range ops {
		rops[i] = resolvedOp{op: op}
		switch op.Op {
		case "insert_element":
			e := s.forest.ByCode(pbicode.Code(op.Parent))
			if e == nil {
				return nil, fmt.Errorf("insert_element: no element with code %d", op.Parent)
			}
			rops[i].el = e
		case "delete_element", "update_element":
			e := s.forest.ByCode(pbicode.Code(op.Code))
			if e == nil {
				return nil, fmt.Errorf("%s: no element with code %d", op.Op, op.Code)
			}
			rops[i].el = e
		}
	}
	return rops, nil
}

// alive reports whether an element resolved at batch start is still part
// of the forest (an earlier op in the batch may have deleted its subtree).
func (s *Store) alive(e *xmltree.Element) bool {
	return s.forest.ByCode(e.Code) == e
}

// apply mutates the forest for one operation.
func (s *Store) apply(rop resolvedOp) error {
	op := rop.op
	switch op.Op {
	case "insert_doc":
		if op.Doc == "" || op.XML == "" {
			return fmt.Errorf("insert_doc needs doc and xml")
		}
		for _, d := range s.docs {
			if d.name == op.Doc {
				return fmt.Errorf("document %q already exists", op.Doc)
			}
		}
		parsed, err := xmltree.ParseString(op.XML, s.cfg.ParseOptions)
		if err != nil {
			return fmt.Errorf("insert_doc %q: %w", op.Doc, err)
		}
		root := parsed.Root
		if err := s.graft(s.forest.Root, root); err != nil {
			return fmt.Errorf("insert_doc %q: %w", op.Doc, err)
		}
		s.docs = append(s.docs, docState{name: op.Doc, root: root})
		walk(root, func(x *xmltree.Element) { s.dirty[x.Tag] = true })
		s.rebuildDocSpans()
		s.inserts.Add(1)
		return nil

	case "delete_doc":
		for i := range s.docs {
			if s.docs[i].name != op.Doc {
				continue
			}
			root := s.docs[i].root
			codes := subtreeCodes(root)
			walk(root, func(x *xmltree.Element) { s.dirty[x.Tag] = true })
			if err := s.forest.Delete(root); err != nil {
				return err
			}
			if err := s.idxDeleteCodes(codes); err != nil {
				return err
			}
			s.docs = append(s.docs[:i], s.docs[i+1:]...)
			s.rebuildDocSpans()
			s.deletes.Add(1)
			return nil
		}
		return fmt.Errorf("delete_doc: unknown document %q", op.Doc)

	case "insert_element":
		if op.Tag == "" {
			return fmt.Errorf("insert_element needs a tag")
		}
		parent := rop.el
		if parent == s.forest.Root {
			return fmt.Errorf("insert_element: use insert_doc to add top-level documents")
		}
		if !s.alive(parent) {
			return fmt.Errorf("insert_element: code %d was deleted earlier in the batch", op.Parent)
		}
		el := &xmltree.Element{Tag: op.Tag}
		if err := s.graft(parent, el); err != nil {
			return err
		}
		s.dirty[op.Tag] = true
		s.inserts.Add(1)
		return nil

	case "delete_element":
		e := rop.el
		if e.Parent == nil {
			return fmt.Errorf("delete_element: cannot delete the collection root")
		}
		if e.Parent == s.forest.Root {
			return fmt.Errorf("delete_element: code %d is a document root; use delete_doc", op.Code)
		}
		if !s.alive(e) {
			return fmt.Errorf("delete_element: code %d was deleted earlier in the batch", op.Code)
		}
		codes := subtreeCodes(e)
		walk(e, func(x *xmltree.Element) { s.dirty[x.Tag] = true })
		if err := s.forest.Delete(e); err != nil {
			return err
		}
		if err := s.idxDeleteCodes(codes); err != nil {
			return err
		}
		s.deletes.Add(1)
		return nil

	case "update_element":
		if op.Tag == "" {
			return fmt.Errorf("update_element needs a tag")
		}
		e := rop.el
		if e.Parent == nil {
			return fmt.Errorf("update_element: cannot retag the collection root")
		}
		if !s.alive(e) {
			return fmt.Errorf("update_element: code %d was deleted earlier in the batch", op.Code)
		}
		old := e.Tag
		if err := s.forest.Retag(e, op.Tag); err != nil {
			return err
		}
		s.dirty[old] = true
		s.dirty[op.Tag] = true
		s.updates.Add(1)
		return nil

	default:
		return fmt.Errorf("unknown op %q", op.Op)
	}
}

// Apply applies a batch of operations and publishes the result as the next
// epoch. The batch is atomic: if any operation fails, the whole batch is
// rolled back (state reloads from the current epoch) and no epoch is
// published. Batches are serialized; queries are unaffected — they keep
// serving the current epoch until the publish hook swaps them over.
func (s *Store) Apply(ops []Op) (*CommitResult, error) {
	if len(ops) == 0 {
		return nil, &BatchError{fmt.Errorf("ingest: empty batch")}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("ingest: store closed")
	}
	scoped0, global0 := s.renumScoped.Load(), s.renumGlobal.Load()
	rops, err := s.resolve(ops)
	if err != nil {
		// Nothing mutated yet; no rollback needed.
		s.mu.Unlock()
		return nil, &BatchError{fmt.Errorf("ingest: %w", err)}
	}
	for _, rop := range rops {
		if err := s.apply(rop); err != nil {
			relErr := s.reload()
			s.mu.Unlock()
			if relErr != nil {
				return nil, fmt.Errorf("ingest: %v; and rollback reload failed: %w", err, relErr)
			}
			return nil, &BatchError{fmt.Errorf("ingest: %w (batch rolled back)", err)}
		}
	}
	res, hook, err := s.commit(len(ops), scoped0, global0)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if hook != nil {
		hook(res.Epoch, res.Path)
	}
	return res, nil
}

// commit freezes the mutated forest as the next epoch. Called with mu held;
// returns the publish hook to run after unlock.
func (s *Store) commit(applied int, scoped0, global0 uint64) (*CommitResult, func(int64, string), error) {
	eng, rels, err := containment.Open(containment.Config{
		Path: s.cur, ReadOnly: true, BufferPages: s.cfg.BufferPages,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: reopen current epoch: %w", err)
	}
	defer eng.Close()

	liveTags := s.forest.Tags()
	isDirty := func(tag string) bool { return s.dirtyAll || s.dirty[tag] }
	var keep []*containment.Relation
	for name, r := range rels {
		tag, isTag := strings.CutPrefix(name, relPrefix)
		if isTag && isDirty(tag) {
			continue // replaced (or dropped) below
		}
		keep = append(keep, r)
	}
	var dirtyTags []string
	if s.dirtyAll {
		for tag := range liveTags {
			if tag != s.forest.Root.Tag {
				dirtyTags = append(dirtyTags, tag)
			}
		}
	} else {
		for tag := range s.dirty {
			dirtyTags = append(dirtyTags, tag)
		}
	}
	sort.Strings(dirtyTags)
	for _, tag := range dirtyTags {
		codes := s.forest.Codes(tag)
		if len(codes) == 0 {
			continue // tag vanished; drop its relation from the catalog
		}
		r, err := eng.Load(relPrefix+tag, codes)
		if err != nil {
			return nil, nil, fmt.Errorf("ingest: load tag %q: %w", tag, err)
		}
		keep = append(keep, r)
	}

	var docs []containment.DocInfo
	for _, d := range s.docs {
		n := int64(0)
		walk(d.root, func(*xmltree.Element) { n++ })
		docs = append(docs, containment.DocInfo{Name: d.name, Root: d.root.Code, Elements: n})
	}

	epoch := s.man.Current + 1
	path := filepath.Join(s.dir, fmt.Sprintf("epoch-%06d.pbidb", epoch))
	if err := eng.SaveEpoch(path, epoch, docs, keep...); err != nil {
		return nil, nil, fmt.Errorf("ingest: save epoch %d: %w", epoch, err)
	}
	entry := EpochEntry{
		Epoch: epoch,
		Path:  filepath.Base(path),
		Files: []string{filepath.Base(path) + ".catalog", filepath.Base(path) + ".delta"},
	}
	for _, f := range append([]string{eng.BasePath()}, eng.DeltaChain()...) {
		if rel, err := filepath.Rel(s.dir, f); err == nil {
			entry.Chain = append(entry.Chain, rel)
		}
	}
	if err := s.publishLocked(entry); err != nil {
		return nil, nil, err
	}
	s.cur = path
	s.chain = len(eng.DeltaChain())
	s.dirty = map[string]bool{}
	s.dirtyAll = false
	s.commits.Add(1)
	res := &CommitResult{
		Epoch: epoch, Path: path, Applied: applied,
		RenumbersScoped: s.renumScoped.Load() - scoped0,
		RenumbersGlobal: s.renumGlobal.Load() - global0,
	}
	return res, s.onPublish, nil
}

// publishLocked appends an epoch entry, makes it current, prunes retired
// epochs past cfg.Keep and garbage-collects their unreferenced files, and
// swaps the manifest atomically. Called with mu held.
func (s *Store) publishLocked(entry EpochEntry) error {
	s.man.Epochs = append(s.man.Epochs, entry)
	s.man.Current = entry.Epoch

	// Retain the newest Keep retired epochs plus the current one; epoch 0
	// (the original database) is always safe — it owns no files.
	retainFrom := 0
	if n := len(s.man.Epochs); n > s.cfg.Keep+1 {
		retainFrom = n - (s.cfg.Keep + 1)
	}
	retained := s.man.Epochs[retainFrom:]
	referenced := map[string]bool{}
	for _, e := range retained {
		for _, f := range e.Files {
			referenced[f] = true
		}
		for _, f := range e.Chain {
			// A chained base page file keeps its sidecars alive too: later
			// epochs' catalogs re-verify base pages against the .sums file
			// even after the base's owning entry has aged out.
			referenced[f] = true
			referenced[f+".sums"] = true
			referenced[f+".catalog"] = true
		}
		referenced[e.Path] = true
	}
	// Scan-based GC: delete every epoch-owned file (epoch-* catalogs and
	// deltas, compact-* bases) no retained entry references. Scanning —
	// rather than deleting a dropped entry's files at drop time — also
	// collects files that outlived their owner through a since-retired
	// chain reference, and orphans from a crash between delta and catalog
	// writes. In-progress compactions fold into ".tmp-"-prefixed names and
	// are never touched; files outside the epochs directory (the original
	// database) are out of scope by construction.
	if ents, err := os.ReadDir(s.dir); err == nil {
		for _, ent := range ents {
			name := ent.Name()
			if ent.IsDir() || referenced[name] || strings.HasPrefix(name, ".tmp-") {
				continue
			}
			if !strings.HasPrefix(name, "epoch-") && !strings.HasPrefix(name, "compact-") {
				continue
			}
			os.Remove(filepath.Join(s.dir, name)) //nolint:errcheck // GC is best-effort
		}
	}
	s.man.Epochs = append([]EpochEntry(nil), retained...)
	return s.man.save(s.dir)
}

// DocFor reports the name of the document whose region contains code, for
// inspection endpoints. Empty when none does.
func (s *Store) DocFor(code uint64) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d := s.docFor(pbicode.Code(code)); d != nil {
		return d.name
	}
	return ""
}

// IndexKeys returns the number of entries in the incrementally-maintained
// start index (equals the stored element count; exposed for invariant
// checks in tests and fsck-style tooling).
func (s *Store) IndexKeys() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.NumKeys()
}
