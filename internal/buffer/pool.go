// Package buffer implements a fixed-size buffer pool over a storage.Disk
// with clock (second-chance) replacement, playing the role of the Minibase
// buffer manager in the paper's evaluation. The pool size b — the number of
// buffer pages — is the memory budget every join algorithm in this
// repository is written against.
package buffer

import (
	"errors"
	"fmt"

	"github.com/pbitree/pbitree/internal/storage"
)

// ErrNoFrames is returned when every frame in the pool is pinned and a new
// page is requested.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// Stats counts logical page requests served by the pool.
type Stats struct {
	Hits      int64 // requests served without disk I/O
	Misses    int64 // requests that read from disk
	Evictions int64 // frames reused for another page
	Flushes   int64 // dirty pages written back
}

// Sub returns the difference s - t, for measuring a bracketed operation
// (the per-join cache-effectiveness deltas of containment.IOStats).
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Hits:      s.Hits - t.Hits,
		Misses:    s.Misses - t.Misses,
		Evictions: s.Evictions - t.Evictions,
		Flushes:   s.Flushes - t.Flushes,
	}
}

// Frame is a pinned page in the pool. Data aliases the pool's frame memory
// and is valid until the matching Unpin; callers that modified Data must
// unpin with dirty = true.
type Frame struct {
	ID   storage.PageID
	Data []byte
	slot int
}

type slot struct {
	id    storage.PageID
	data  []byte
	pins  int
	dirty bool
	ref   bool // clock reference bit
}

// Pool is a buffer pool of b frames over a Disk. It is not safe for
// concurrent use; the engine is single-threaded per join, like the system
// in the paper.
type Pool struct {
	disk  storage.Disk
	slots []slot
	table map[storage.PageID]int
	hand  int
	stats Stats
	// interrupt, when non-nil, is polled before every page request (Fetch
	// and NewPage, hits included) and aborts the operation with its error.
	// Join executions arm it with their cancellation check, giving every
	// algorithm page-granularity cooperative cancellation without touching
	// the algorithms themselves; unarmed executions pay one nil check.
	interrupt func() error
}

// New returns a pool of b frames over disk. b must be at least 1.
func New(disk storage.Disk, b int) *Pool {
	if b < 1 {
		panic("buffer: pool needs at least one frame")
	}
	p := &Pool{
		disk:  disk,
		slots: make([]slot, b),
		table: make(map[storage.PageID]int, b),
	}
	for i := range p.slots {
		p.slots[i].id = storage.InvalidPageID
		p.slots[i].data = make([]byte, disk.PageSize())
	}
	return p
}

// Size returns the number of frames b.
func (p *Pool) Size() int { return len(p.slots) }

// PageSize returns the underlying disk's page size.
func (p *Pool) PageSize() int { return p.disk.PageSize() }

// Disk returns the underlying disk (for stats inspection).
func (p *Pool) Disk() storage.Disk { return p.disk }

// Stats returns the pool counters.
func (p *Pool) Stats() Stats { return p.stats }

// Absorb folds another pool's counters into this one. A parallel fan-out
// mounts per-worker pools over the shared disk and absorbs their stats
// into the parent when the workers finish, so an engine-level bracket
// around the whole join (containment.IOStats) accounts the workers' cache
// behavior too. Call it after the worker goroutines have stopped.
func (p *Pool) Absorb(s Stats) {
	p.stats.Hits += s.Hits
	p.stats.Misses += s.Misses
	p.stats.Evictions += s.Evictions
	p.stats.Flushes += s.Flushes
}

// SetInterrupt installs f as the pool's interrupt check and returns the
// previous one (nil if none), so nested executions can save and restore it.
// While installed, f runs before every Fetch and NewPage; a non-nil return
// aborts that request with the error. Cleanup paths (Unpin, Evict, Discard,
// FlushAll) are deliberately exempt so an interrupted join can always
// release its pages and temp relations.
func (p *Pool) SetInterrupt(f func() error) func() error {
	prev := p.interrupt
	p.interrupt = f
	return prev
}

// Resident returns the number of pages currently mapped in the pool,
// pinned or not. Leak tests size the pool larger than the working set and
// assert Resident returns to its pre-join baseline after a (possibly
// interrupted) join has freed its temporaries.
func (p *Pool) Resident() int { return len(p.table) }

// ResetStats zeroes the pool counters.
func (p *Pool) ResetStats() { p.stats = Stats{} }

// Fetch pins the page id and returns its frame, reading it from disk if it
// is not resident.
func (p *Pool) Fetch(id storage.PageID) (Frame, error) {
	if p.interrupt != nil {
		if err := p.interrupt(); err != nil {
			return Frame{}, err
		}
	}
	if i, ok := p.table[id]; ok {
		p.stats.Hits++
		p.slots[i].pins++
		p.slots[i].ref = true
		return Frame{ID: id, Data: p.slots[i].data, slot: i}, nil
	}
	p.stats.Misses++
	i, err := p.victim()
	if err != nil {
		return Frame{}, err
	}
	if err := p.disk.Read(id, p.slots[i].data); err != nil {
		// The victim slot was already flushed and unmapped; leave it free.
		// This is also the page-integrity gate: a disk armed with checksums
		// (storage.ChecksumSet) fails the Read with storage.ErrCorrupt on a
		// mismatch, so a damaged page never becomes a resident frame — the
		// fetch fails, the query fails with a distinct class, and repeat
		// fetches of the quarantined page fail fast without re-reading.
		return Frame{}, fmt.Errorf("buffer: fetch page %d: %w", id, err)
	}
	p.install(i, id)
	return Frame{ID: id, Data: p.slots[i].data, slot: i}, nil
}

// NewPage allocates a fresh zeroed page on disk, pins it and returns its
// frame. The page is marked dirty so it reaches disk even if untouched.
func (p *Pool) NewPage() (Frame, error) {
	if p.interrupt != nil {
		if err := p.interrupt(); err != nil {
			return Frame{}, err
		}
	}
	i, err := p.victim()
	if err != nil {
		return Frame{}, err
	}
	id, err := p.disk.Alloc()
	if err != nil {
		return Frame{}, fmt.Errorf("buffer: alloc: %w", err)
	}
	clear(p.slots[i].data)
	p.install(i, id)
	p.slots[i].dirty = true
	return Frame{ID: id, Data: p.slots[i].data, slot: i}, nil
}

// Unpin releases one pin on the frame. dirty marks the page as modified.
func (p *Pool) Unpin(f Frame, dirty bool) {
	s := &p.slots[f.slot]
	if s.id != f.ID || s.pins <= 0 {
		panic(fmt.Sprintf("buffer: bad unpin of page %d (slot holds %d, pins %d)", f.ID, s.id, s.pins))
	}
	s.pins--
	if dirty {
		s.dirty = true
	}
}

// FlushAll writes every dirty resident page back to disk. Pinned pages are
// flushed too (their current content is written).
func (p *Pool) FlushAll() error {
	for i := range p.slots {
		if err := p.flushSlot(i); err != nil {
			return err
		}
	}
	return nil
}

// Evict drops the page from the pool if resident and unpinned, flushing it
// first when dirty. It is a no-op for non-resident pages and an error for
// pinned ones. Relations use it to drop pages of temporary files that were
// just deleted.
func (p *Pool) Evict(id storage.PageID) error {
	i, ok := p.table[id]
	if !ok {
		return nil
	}
	if p.slots[i].pins > 0 {
		return fmt.Errorf("buffer: evict pinned page %d", id)
	}
	if err := p.flushSlot(i); err != nil {
		return err
	}
	delete(p.table, id)
	p.slots[i].id = storage.InvalidPageID
	p.slots[i].ref = false
	return nil
}

// Discard drops the page from the pool if resident and unpinned, WITHOUT
// flushing dirty content — the page's data is dead (its file was deleted).
// Freeing temporary relations uses this so that partitions and sort runs
// that lived and died inside the buffer never cost write I/O, exactly like
// temp files in a real engine.
func (p *Pool) Discard(id storage.PageID) error {
	i, ok := p.table[id]
	if !ok {
		return nil
	}
	if p.slots[i].pins > 0 {
		return fmt.Errorf("buffer: discard pinned page %d", id)
	}
	delete(p.table, id)
	p.slots[i].id = storage.InvalidPageID
	p.slots[i].ref = false
	p.slots[i].dirty = false
	return nil
}

// PinnedFrames returns the number of frames currently pinned (for tests and
// leak detection).
func (p *Pool) PinnedFrames() int {
	n := 0
	for i := range p.slots {
		if p.slots[i].pins > 0 {
			n++
		}
	}
	return n
}

func (p *Pool) flushSlot(i int) error {
	s := &p.slots[i]
	if s.id == storage.InvalidPageID || !s.dirty {
		return nil
	}
	if err := p.disk.Write(s.id, s.data); err != nil {
		return fmt.Errorf("buffer: flush page %d: %w", s.id, err)
	}
	p.stats.Flushes++
	s.dirty = false
	return nil
}

// install maps slot i to page id with one pin.
func (p *Pool) install(i int, id storage.PageID) {
	s := &p.slots[i]
	s.id = id
	s.pins = 1
	s.dirty = false
	s.ref = true
	p.table[id] = i
}

// victim finds a free or evictable slot using the clock algorithm, flushes
// its dirty content, unmaps it and returns its index.
func (p *Pool) victim() (int, error) {
	// Two full sweeps: the first clears reference bits, the second takes
	// the first unpinned frame.
	for pass := 0; pass < 2*len(p.slots); pass++ {
		i := p.hand
		p.hand = (p.hand + 1) % len(p.slots)
		s := &p.slots[i]
		if s.id == storage.InvalidPageID {
			return i, nil
		}
		if s.pins > 0 {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		if err := p.flushSlot(i); err != nil {
			return 0, err
		}
		p.stats.Evictions++
		delete(p.table, s.id)
		s.id = storage.InvalidPageID
		return i, nil
	}
	return 0, ErrNoFrames
}
