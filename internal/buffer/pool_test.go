package buffer

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/pbitree/pbitree/internal/storage"
)

func newPool(t *testing.T, b int) (*Pool, *storage.MemDisk) {
	t.Helper()
	d := storage.NewMemDisk(256, storage.CostModel{})
	t.Cleanup(func() { d.Close() })
	return New(d, b), d
}

func TestPoolNewPageFetchRoundtrip(t *testing.T) {
	p, _ := newPool(t, 3)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 42
	id := f.ID
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	g, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != 42 {
		t.Fatalf("Data[0] = %d", g.Data[0])
	}
	p.Unpin(g, false)
	if p.PinnedFrames() != 0 {
		t.Fatalf("PinnedFrames = %d", p.PinnedFrames())
	}
}

func TestPoolEvictionWritesBack(t *testing.T) {
	p, d := newPool(t, 2)
	// Create 5 pages, each marked with its ID, through a 2-frame pool.
	var ids []storage.PageID
	for i := 0; i < 5; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(f.ID + 1)
		ids = append(ids, f.ID)
		p.Unpin(f, true)
	}
	// All pages must be readable with correct content.
	for _, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(id+1) {
			t.Fatalf("page %d content %d", id, f.Data[0])
		}
		p.Unpin(f, false)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions through a 2-frame pool")
	}
	if d.Stats().Writes == 0 {
		t.Fatal("dirty pages never written")
	}
}

func TestPoolHitsAndMisses(t *testing.T) {
	p, _ := newPool(t, 4)
	f, _ := p.NewPage()
	id := f.ID
	p.Unpin(f, true)
	for i := 0; i < 3; i++ {
		g, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(g, false)
	}
	s := p.Stats()
	if s.Hits != 3 {
		t.Fatalf("Hits = %d", s.Hits)
	}
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatal("ResetStats")
	}
}

func TestPoolAllPinned(t *testing.T) {
	p, _ := newPool(t, 2)
	f1, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewPage(); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("third NewPage: %v", err)
	}
	p.Unpin(f2, false)
	if _, err := p.NewPage(); err != nil {
		t.Fatalf("NewPage after unpin: %v", err)
	}
	p.Unpin(f1, false)
}

func TestPoolPinCountNesting(t *testing.T) {
	p, _ := newPool(t, 1)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Fetch(f.ID) // second pin on the same page
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false)
	if p.PinnedFrames() != 1 {
		t.Fatal("page released while still pinned once")
	}
	p.Unpin(g, false)
	if p.PinnedFrames() != 0 {
		t.Fatal("pins not drained")
	}
}

func TestPoolBadUnpinPanics(t *testing.T) {
	p, _ := newPool(t, 1)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Error("double unpin did not panic")
		}
	}()
	p.Unpin(f, false)
}

func TestPoolEvict(t *testing.T) {
	p, d := newPool(t, 2)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 9
	id := f.ID
	if err := p.Evict(id); err == nil {
		t.Fatal("evicted a pinned page")
	}
	p.Unpin(f, true)
	if err := p.Evict(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Evict(id); err != nil { // non-resident: no-op
		t.Fatal(err)
	}
	// Dirty content must have been flushed.
	buf := make([]byte, 256)
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Fatal("evicted dirty page not flushed")
	}
}

func TestPoolReadErrorPropagates(t *testing.T) {
	d := storage.NewMemDisk(256, storage.CostModel{})
	fd := storage.NewFaultDisk(d)
	p := New(fd, 2)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.Evict(id); err != nil {
		t.Fatal(err)
	}
	fd.BadPages = map[storage.PageID]bool{id: true}
	if _, err := p.Fetch(id); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Fetch over bad page: %v", err)
	}
	// The pool must survive the failure and keep serving other pages.
	fd.BadPages = nil
	g, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(g, false)
}

func TestPoolFlushErrorPropagates(t *testing.T) {
	d := storage.NewMemDisk(256, storage.CostModel{})
	fd := storage.NewFaultDisk(d)
	p := New(fd, 1)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true)
	fd.FailWriteAfter = 1
	if err := p.FlushAll(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("FlushAll: %v", err)
	}
	// Eviction path must also surface the flush failure.
	if _, err := p.NewPage(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("NewPage forcing dirty eviction: %v", err)
	}
}

func TestPoolClockGivesSecondChance(t *testing.T) {
	p, _ := newPool(t, 2)
	a, _ := p.NewPage()
	b, _ := p.NewPage()
	idA, idB := a.ID, b.ID
	p.Unpin(a, false)
	p.Unpin(b, false)
	// Touch A so its reference bit is set; allocate a new page: the clock
	// should prefer evicting B (A gets a second chance after its ref bit
	// is consumed, B's is consumed first... both have ref bits; whichever
	// is evicted, the other must remain resident).
	f, err := p.Fetch(idA)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false)
	g, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(g, false)
	// Exactly one of A, B was evicted.
	resident := 0
	for _, id := range []storage.PageID{idA, idB} {
		if _, ok := p.table[id]; ok {
			resident++
		}
	}
	if resident != 1 {
		t.Fatalf("resident = %d, want 1", resident)
	}
}

func TestPoolSizeOne(t *testing.T) {
	// The smallest legal pool must still work for sequential workloads.
	p, _ := newPool(t, 1)
	var ids []storage.PageID
	for i := 0; i < 10; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[1] = byte(i)
		ids = append(ids, f.ID)
		p.Unpin(f, true)
	}
	for i, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[1] != byte(i) {
			t.Fatalf("page %d content %d, want %d", id, f.Data[1], i)
		}
		p.Unpin(f, false)
	}
}

// TestPoolModelBased drives the pool with random operation sequences and
// checks every read against a shadow model of page contents, plus the pool
// invariants (pin accounting, frame bound).
func TestPoolModelBased(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		frames := 1 + rng.Intn(6)
		d := storage.NewMemDisk(64, storage.CostModel{})
		p := New(d, frames)
		model := map[storage.PageID]byte{} // page -> expected first byte
		type pin struct {
			f     Frame
			dirty bool
		}
		var pins []pin
		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // new page
				if len(pins) >= frames {
					continue
				}
				f, err := p.NewPage()
				if err != nil {
					t.Fatal(err)
				}
				v := byte(rng.Intn(256))
				f.Data[0] = v
				model[f.ID] = v
				pins = append(pins, pin{f: f, dirty: true})
			case 3, 4, 5, 6: // fetch an existing page and verify
				if len(model) == 0 || len(pins) >= frames {
					continue
				}
				var id storage.PageID
				k := rng.Intn(len(model))
				for pid := range model {
					if k == 0 {
						id = pid
						break
					}
					k--
				}
				f, err := p.Fetch(id)
				if err != nil {
					t.Fatal(err)
				}
				if f.Data[0] != model[id] {
					t.Fatalf("trial %d: page %d holds %d, want %d", trial, id, f.Data[0], model[id])
				}
				// Sometimes mutate.
				dirty := false
				if rng.Intn(2) == 0 {
					v := byte(rng.Intn(256))
					f.Data[0] = v
					model[id] = v
					dirty = true
				}
				pins = append(pins, pin{f: f, dirty: dirty})
			case 7, 8: // unpin one
				if len(pins) == 0 {
					continue
				}
				i := rng.Intn(len(pins))
				p.Unpin(pins[i].f, pins[i].dirty)
				pins = append(pins[:i], pins[i+1:]...)
			case 9: // flush everything
				if err := p.FlushAll(); err != nil {
					t.Fatal(err)
				}
			}
			if got := p.PinnedFrames(); got > frames {
				t.Fatalf("pinned %d > %d frames", got, frames)
			}
		}
		for _, pn := range pins {
			p.Unpin(pn.f, pn.dirty)
		}
		// Final verification through a fresh pass.
		if err := p.FlushAll(); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		for id, want := range model {
			// Evict so the read comes from disk.
			if err := p.Evict(id); err != nil {
				t.Fatal(err)
			}
			if err := d.Read(id, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != want {
				t.Fatalf("trial %d: disk page %d holds %d, want %d", trial, id, buf[0], want)
			}
		}
		d.Close()
	}
}

func TestNewPanicsOnZeroFrames(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(storage.NewMemDisk(256, storage.CostModel{}), 0)
}
