package benchkit

import (
	"fmt"
	"io"
	"time"
)

// Render prints an experiment's measurement table, with the paper's
// improvement ratio against each dataset's MIN_RGN row where one exists.
func Render(w io.Writer, res *Result) {
	fmt.Fprintf(w, "== %s: %s ==\n", res.ID, res.Title)
	minByDataset := map[string]Row{}
	for _, r := range res.Rows {
		if r.Algorithm == "MIN_RGN" {
			minByDataset[r.Dataset] = r
		}
	}
	fmt.Fprintf(w, "%-14s %-12s %12s %10s %10s %10s %10s %8s\n",
		"dataset", "algorithm", "elapsed", "pageIO", "predIO", "pairs", "falsehits", "improv")
	var lastDataset string
	for _, r := range res.Rows {
		if r.Dataset != lastDataset && lastDataset != "" {
			fmt.Fprintln(w, "")
		}
		lastDataset = r.Dataset
		if r.Algorithm == "encode" { // coding-space rows (A6)
			util := float64(r.SizeA) / float64(uint64(1)<<uint(r.HeightsA))
			fmt.Fprintf(w, "%-14s %d elements -> PBiTree height %d (%d-bit codes, %.4f%% of code space used)\n",
				r.Dataset, r.SizeA, r.HeightsA, r.HeightsA, util*100)
			continue
		}
		improv := "-"
		if min, ok := minByDataset[r.Dataset]; ok && r.Algorithm != "MIN_RGN" {
			improv = fmt.Sprintf("%+.0f%%", improvement(min, r)*100)
		}
		fmt.Fprintf(w, "%-14s %-12s %12s %10d %10d %10d %10d %8s\n",
			r.Dataset, r.Algorithm, fmtDur(r.Elapsed), r.IOs, r.PredictedIO, r.Pairs, r.FalseHits, improv)
	}
	fmt.Fprintln(w, "")
}

// RenderStats prints the dataset statistics table (the Table 2(a)-(d)
// shape): sizes, height counts and result cardinality per dataset, taken
// from the first row of each dataset.
func RenderStats(w io.Writer, res *Result) {
	fmt.Fprintf(w, "== %s: dataset statistics ==\n", res.ID)
	fmt.Fprintf(w, "%-14s %10s %5s %10s %5s %10s %8s %10s\n",
		"dataset", "|A|", "H_A", "|D|", "H_D", "#results", "parts", "replicated")
	seen := map[string]bool{}
	for _, r := range res.Rows {
		if seen[r.Dataset] {
			continue
		}
		seen[r.Dataset] = true
		fmt.Fprintf(w, "%-14s %10d %5d %10d %5d %10d %8d %10d\n",
			r.Dataset, r.SizeA, r.HeightsA, r.SizeD, r.HeightsD, r.Pairs, r.Partitions, r.Replicated)
	}
	fmt.Fprintln(w, "")
}

// RenderCSV emits the rows as CSV for plotting.
func RenderCSV(w io.Writer, res *Result) {
	fmt.Fprintln(w, "experiment,dataset,algorithm,elapsed_ms,wall_ms,page_io,pred_io,seq_io,pairs,false_hits,replicated,partitions,size_a,size_d")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s,%s,%s,%.3f,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			res.ID, r.Dataset, r.Algorithm,
			float64(r.Elapsed)/float64(time.Millisecond),
			float64(r.Wall)/float64(time.Millisecond),
			r.IOs, r.PredictedIO, r.SeqIOs, r.Pairs, r.FalseHits, r.Replicated, r.Partitions, r.SizeA, r.SizeD)
	}
}

// fmtDur renders durations at millisecond precision like the paper's
// second-scale tables.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// Summarize prints the experiment's headline: the min/max improvement of
// each non-baseline algorithm over MIN_RGN, the numbers the paper's
// Figure 6 bar charts show.
func Summarize(w io.Writer, res *Result) {
	minByDataset := map[string]Row{}
	for _, r := range res.Rows {
		if r.Algorithm == "MIN_RGN" {
			minByDataset[r.Dataset] = r
		}
	}
	if len(minByDataset) == 0 {
		return
	}
	type agg struct {
		min, max, sum float64
		n             int
	}
	stats := map[string]*agg{}
	for _, r := range res.Rows {
		min, ok := minByDataset[r.Dataset]
		if !ok || r.Algorithm == "MIN_RGN" {
			continue
		}
		switch r.Algorithm {
		case "INLJN", "STACKTREE", "ADB+":
			continue // baseline components
		}
		v := improvement(min, r)
		a := stats[r.Algorithm]
		if a == nil {
			a = &agg{min: v, max: v}
			stats[r.Algorithm] = a
		}
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
		a.sum += v
		a.n++
	}
	for alg, a := range stats {
		fmt.Fprintf(w, "%s improvement over MIN_RGN: min %+.0f%%, avg %+.0f%%, max %+.0f%%\n",
			alg, a.min*100, a.sum/float64(a.n)*100, a.max*100)
	}
	fmt.Fprintln(w, "")
}
