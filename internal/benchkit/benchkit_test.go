package benchkit

import (
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps experiment tests fast while still exercising real
// partitioning against the 64-frame pools.
func tinyConfig() Config {
	return Config{
		Scale:       0.002, // L = 2000, S = 100 (min)
		DocScale:    0.004,
		BufferPages: 64,
		PageSize:    512,
		Seed:        7,
	}
}

func checkResult(t *testing.T, res *Result, wantAlgos ...string) {
	t.Helper()
	if len(res.Rows) == 0 {
		t.Fatalf("%s: no rows", res.ID)
	}
	algos := map[string]bool{}
	for _, r := range res.Rows {
		algos[r.Algorithm] = true
		if r.Elapsed <= 0 {
			t.Errorf("%s/%s/%s: elapsed %v", res.ID, r.Dataset, r.Algorithm, r.Elapsed)
		}
		if r.Pairs < 0 {
			t.Errorf("%s: negative pairs", res.ID)
		}
	}
	for _, want := range wantAlgos {
		if !algos[want] {
			t.Errorf("%s: missing algorithm %s (have %v)", res.ID, want, algos)
		}
	}
	// Result counts must agree across algorithms per dataset.
	pairs := map[string]int64{}
	for _, r := range res.Rows {
		if prev, ok := pairs[r.Dataset]; ok && prev != r.Pairs {
			t.Errorf("%s/%s: pair count %d vs %d across algorithms", res.ID, r.Dataset, r.Pairs, prev)
		}
		pairs[r.Dataset] = r.Pairs
	}
}

func TestE1(t *testing.T) {
	res, err := E1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "MIN_RGN", "SHCJ", "VPJ", "INLJN", "STACKTREE", "ADB+")
	if n := len(res.Rows); n != 8*6 {
		t.Fatalf("rows = %d, want 48", n)
	}
}

func TestE2(t *testing.T) {
	res, err := E2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "MIN_RGN", "MHCJ+Rollup", "VPJ")
	// Rollup on multi-height data should record false hits somewhere.
	var falseHits int64
	for _, r := range res.Rows {
		falseHits += r.FalseHits
	}
	if falseHits == 0 {
		t.Error("no false hits across all multi-height datasets")
	}
}

func TestE3E4(t *testing.T) {
	cfg := tinyConfig()
	res3, err := E3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res3, "MIN_RGN", "MHCJ+Rollup", "VPJ")
	if len(res3.Rows) != 10*6 {
		t.Fatalf("E3 rows = %d", len(res3.Rows))
	}
	res4, err := E4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res4, "MIN_RGN", "MHCJ+Rollup", "VPJ")
	if len(res4.Rows) != 10*6 {
		t.Fatalf("E4 rows = %d", len(res4.Rows))
	}
}

func TestE5BufferSweep(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.005
	res, err := E5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "MIN_RGN", "MHCJ+Rollup", "VPJ")
	if len(res.Rows) != len(bufferSweepPercents)*3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestE6BufferSweepMulti(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.005
	res, err := E6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "MIN_RGN", "MHCJ+Rollup", "VPJ")
}

func TestE7Scalability(t *testing.T) {
	cfg := tinyConfig()
	res, err := E7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "MIN_RGN", "SHCJ", "VPJ")
	if len(res.Rows) != 8*3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestE8ScalabilityMulti(t *testing.T) {
	cfg := tinyConfig()
	res, err := E8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "MIN_RGN", "MHCJ+Rollup", "VPJ")
	if len(res.Rows) != 8*3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestA3Replication(t *testing.T) {
	res, err := A3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d, want one VPJ row per dataset", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Algorithm != "VPJ" {
			t.Fatalf("unexpected algorithm %s", r.Algorithm)
		}
		if r.HeightsA == 0 || r.HeightsD == 0 {
			t.Fatalf("%s: heights not annotated", r.Dataset)
		}
	}
}

func TestA1RollupBeatsOrMatchesMHCJ(t *testing.T) {
	res, err := A1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "MHCJ", "MHCJ+Rollup")
}

func TestA4TargetSweep(t *testing.T) {
	res, err := A4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// All targets agree on the result count; false hits grow with the
	// target (weakly).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Pairs != res.Rows[0].Pairs {
			t.Fatal("pair counts differ across targets")
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.FalseHits < first.FalseHits {
		t.Errorf("false hits shrank with a higher target: %d -> %d", first.FalseHits, last.FalseHits)
	}
}

func TestA2RegionVsAdapted(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.01
	res, err := A2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "ST-PBiTree", "ST-Region")
	// Same inputs, same record width: page I/O must be near-identical.
	byDS := map[string]map[string]Row{}
	for _, r := range res.Rows {
		if byDS[r.Dataset] == nil {
			byDS[r.Dataset] = map[string]Row{}
		}
		byDS[r.Dataset][r.Algorithm] = r
	}
	for ds, m := range byDS {
		adapted, native := m["ST-PBiTree"], m["ST-Region"]
		if adapted.Pairs != native.Pairs {
			t.Fatalf("%s: pair counts differ", ds)
		}
		lo, hi := native.IOs*9/10, native.IOs*11/10
		if adapted.IOs < lo || adapted.IOs > hi {
			t.Errorf("%s: adapted IO %d vs native %d (beyond 10%%)", ds, adapted.IOs, native.IOs)
		}
	}
}

func TestA5CostModel(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.01 // large enough that nothing fits the 64-frame pool
	res, err := A5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "MHCJ+Rollup", "VPJ", "STACKTREE", "MPMGJN")
	for _, r := range res.Rows {
		if r.PredictedIO <= 0 {
			t.Fatalf("%s/%s: no prediction", r.Dataset, r.Algorithm)
		}
		if r.IOs > 0 {
			ratio := float64(r.IOs) / float64(r.PredictedIO)
			if ratio < 0.2 || ratio > 5 {
				t.Errorf("%s/%s: predicted %d vs measured %d (ratio %.2f)",
					r.Dataset, r.Algorithm, r.PredictedIO, r.IOs, ratio)
			}
		}
	}
}

func TestA6CodingSpace(t *testing.T) {
	res, err := A6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SizeA == 0 || r.HeightsA == 0 || r.HeightsA > 63 {
			t.Fatalf("%s: elements=%d height=%d", r.Dataset, r.SizeA, r.HeightsA)
		}
	}
}

func TestA7PipelinedPaths(t *testing.T) {
	cfg := tinyConfig()
	res, err := A7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "pipelined", "re-partition")
	if len(res.Rows)%2 != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestA8Anchoring(t *testing.T) {
	cfg := tinyConfig()
	res, err := A8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "VPJ-LCA", "VPJ-root")
}

func TestRenderers(t *testing.T) {
	cfg := tinyConfig()
	res, err := E1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tbl, stats, csv, sum strings.Builder
	Render(&tbl, res)
	RenderStats(&stats, res)
	RenderCSV(&csv, res)
	Summarize(&sum, res)
	if !strings.Contains(tbl.String(), "MIN_RGN") || !strings.Contains(tbl.String(), "SLLH") {
		t.Error("table missing content")
	}
	if !strings.Contains(stats.String(), "#results") {
		t.Error("stats header missing")
	}
	if !strings.Contains(csv.String(), "experiment,dataset") {
		t.Error("csv header missing")
	}
	if !strings.Contains(sum.String(), "improvement over MIN_RGN") {
		t.Error("summary missing")
	}
}

// TestE1ModerateScale exercises the whole pipeline at a scale where the
// 500-page pool spills for every algorithm and the paper's ordering must
// emerge: partitioned algorithms at or below MIN_RGN on every dataset
// where one side is small. Several seconds; skipped with -short.
func TestE1ModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale experiment")
	}
	cfg := Default()
	cfg.Scale = 0.05     // L = 50k elements, S = 500
	cfg.BufferPages = 64 // data >> buffer: the paper's regime
	res, err := E1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	minBy := map[string]Row{}
	algBy := map[string]map[string]Row{}
	for _, r := range res.Rows {
		if r.Algorithm == "MIN_RGN" {
			minBy[r.Dataset] = r
		}
		if algBy[r.Dataset] == nil {
			algBy[r.Dataset] = map[string]Row{}
		}
		algBy[r.Dataset][r.Algorithm] = r
	}
	// The headline claim on the mixed-size datasets: large improvement.
	for _, ds := range []string{"SLSH", "SSLH", "SLSL", "SSLL"} {
		min, ok := minBy[ds]
		if !ok {
			t.Fatalf("no MIN_RGN for %s", ds)
		}
		shcj := algBy[ds]["SHCJ"]
		if imp := improvement(min, shcj); imp < 0.5 {
			t.Errorf("%s: SHCJ improvement %.0f%%, want >= 50%%", ds, imp*100)
		}
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(Order) != len(exps) {
		t.Fatalf("Order has %d, registry %d", len(Order), len(exps))
	}
	for _, id := range Order {
		if exps[id] == nil {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestImprovementMath(t *testing.T) {
	min := Row{Elapsed: 10 * time.Second}
	fast := Row{Elapsed: 1 * time.Second}
	if got := improvement(min, fast); got < 0.89 || got > 0.91 {
		t.Fatalf("improvement = %v", got)
	}
	if improvement(Row{}, fast) != 0 {
		t.Fatal("zero baseline not guarded")
	}
}
