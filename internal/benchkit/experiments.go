package benchkit

import (
	"fmt"
	"strings"
	"time"

	"github.com/pbitree/pbitree/containment"
	"github.com/pbitree/pbitree/internal/workload"
	"github.com/pbitree/pbitree/pbicode"
	"github.com/pbitree/pbitree/xmltree"
)

// E1 reproduces Table 2(a)/(e) and Figure 6(a): the eight single-height
// synthetic datasets, MIN_RGN (best of INLJN/STACKTREE/ADB+, sort and
// index built on the fly) against SHCJ and VPJ.
func E1(cfg Config) (*Result, error) {
	return synthExperiment(cfg, "E1",
		"Single-height synthetic datasets (Table 2(e), Fig. 6(a))",
		func(name string) bool { return name[0] == 'S' },
		[]containment.Algorithm{containment.SHCJ, containment.VPJ})
}

// E2 reproduces Table 2(b)/(f) and Figure 6(b): the eight multiple-height
// datasets, MIN_RGN against MHCJ+Rollup and VPJ, with rollup false hits.
func E2(cfg Config) (*Result, error) {
	return synthExperiment(cfg, "E2",
		"Multiple-height synthetic datasets (Fig. 6(b), Table 2(f))",
		func(name string) bool { return name[0] == 'M' },
		[]containment.Algorithm{containment.MHCJRollup, containment.VPJ})
}

// synthExperiment runs the shared E1/E2 shape.
func synthExperiment(cfg Config, id, title string, include func(string) bool, algs []containment.Algorithm) (*Result, error) {
	res := &Result{ID: id, Title: title}
	for _, p := range workload.StandardDatasets(cfg.Scale, cfg.Seed) {
		if !include(p.Name) {
			continue
		}
		eng, a, d, data, err := cfg.loadSynth(p, 0)
		if err != nil {
			return nil, err
		}
		ha, hd := heightsOf(data.A), heightsOf(data.D)
		annotate := func(r Row) Row {
			r.HeightsA, r.HeightsD = ha, hd
			return r
		}
		best, all, err := minRGN(eng, p.Name, a, d)
		if err != nil {
			eng.Close()
			return nil, err
		}
		for _, r := range all {
			res.Rows = append(res.Rows, annotate(r))
		}
		res.Rows = append(res.Rows, annotate(best))
		for _, alg := range algs {
			row, err := runJoin(eng, p.Name, a, d, alg, containment.JoinOptions{})
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("%s/%v: %w", p.Name, alg, err)
			}
			res.Rows = append(res.Rows, annotate(row))
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// docExperiment runs the shared E3/E4 shape over a generated document.
func docExperiment(cfg Config, id, title string, doc *xmltree.Document, queries []workload.Query) (*Result, error) {
	res := &Result{ID: id, Title: title}
	for _, q := range queries {
		eng, err := cfg.newEngine(0)
		if err != nil {
			return nil, err
		}
		a, d, err := loadDocQuery(eng, doc, q)
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		ha := heightsOf(doc.Codes(q.AncTag))
		hd := heightsOf(doc.Codes(q.DescTag))
		annotate := func(r Row) Row {
			r.HeightsA, r.HeightsD = ha, hd
			return r
		}
		best, all, err := minRGN(eng, q.ID, a, d)
		if err != nil {
			eng.Close()
			return nil, err
		}
		for _, r := range all {
			res.Rows = append(res.Rows, annotate(r))
		}
		res.Rows = append(res.Rows, annotate(best))
		for _, alg := range []containment.Algorithm{containment.MHCJRollup, containment.VPJ} {
			row, err := runJoin(eng, q.ID, a, d, alg, containment.JoinOptions{})
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("%s/%v: %w", q.ID, alg, err)
			}
			res.Rows = append(res.Rows, annotate(row))
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// E3 reproduces Table 2(c) and Figure 6(c): the ten BENCHMARK (XMark)
// containment joins.
func E3(cfg Config) (*Result, error) {
	doc, err := workload.GenerateXMark(workload.XMark(cfg.DocScale, cfg.Seed))
	if err != nil {
		return nil, err
	}
	return docExperiment(cfg, "E3", "BENCHMARK (XMark) joins B1-B10 (Fig. 6(c), Table 2(c))", doc, workload.XMarkQueries())
}

// E4 reproduces Table 2(d) and Figure 6(d): the ten DBLP containment
// joins.
func E4(cfg Config) (*Result, error) {
	doc, err := workload.GenerateDBLP(workload.DBLP(cfg.DocScale, cfg.Seed))
	if err != nil {
		return nil, err
	}
	return docExperiment(cfg, "E4", "DBLP joins D1-D10 (Fig. 6(d), Table 2(d))", doc, workload.DBLPQueries())
}

// bufferSweepPercents are the relative buffer sizes P of Figure 6(e)/(f):
// buffer pages as a percentage of the smaller input's pages.
var bufferSweepPercents = []float64{0.5, 1, 2, 4, 8, 16}

// bufferSweep runs one dataset across the sweep.
func bufferSweep(cfg Config, id, title, dataset string, algs []containment.Algorithm) (*Result, error) {
	p, err := workload.Dataset(dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: id, Title: title}
	for _, pct := range bufferSweepPercents {
		// Build once per buffer size: the pool is the engine's.
		data, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		minRecs := len(data.A)
		if len(data.D) < minRecs {
			minRecs = len(data.D)
		}
		perPage := (cfg.PageSize - 8) / 16
		minPages := (minRecs + perPage - 1) / perPage
		b := int(float64(minPages) * pct / 100)
		if b < 4 {
			b = 4
		}
		eng, err := cfg.newEngine(b)
		if err != nil {
			return nil, err
		}
		a, err := eng.Load("A", data.A)
		if err != nil {
			eng.Close()
			return nil, err
		}
		d, err := eng.Load("D", data.D)
		if err != nil {
			eng.Close()
			return nil, err
		}
		label := fmt.Sprintf("%s P=%.1f%%", dataset, pct)
		best, _, err := minRGN(eng, label, a, d)
		if err != nil {
			eng.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, best)
		for _, alg := range algs {
			row, err := runJoin(eng, label, a, d, alg, containment.JoinOptions{})
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("%s/%v: %w", label, alg, err)
			}
			res.Rows = append(res.Rows, row)
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// E5 reproduces Figure 6(e): SLLL elapsed times across buffer sizes.
func E5(cfg Config) (*Result, error) {
	return bufferSweep(cfg, "E5", "Varying buffer sizes, SLLL (Fig. 6(e))", "SLLL",
		[]containment.Algorithm{containment.MHCJRollup, containment.VPJ})
}

// E6 reproduces Figure 6(f): MLLL across buffer sizes.
func E6(cfg Config) (*Result, error) {
	return bufferSweep(cfg, "E6", "Varying buffer sizes, MLLL (Fig. 6(f))", "MLLL",
		[]containment.Algorithm{containment.MHCJRollup, containment.VPJ})
}

// scalability runs the Figure 6(g)/(h) series.
func scalability(cfg Config, id, title string, multi bool, algs []containment.Algorithm) (*Result, error) {
	base := int(cfg.Scale * 5e4)
	if base < 50 {
		base = 50
	}
	res := &Result{ID: id, Title: title}
	for _, p := range workload.ScalabilitySeries(multi, base, 8, 0.1, cfg.Seed) {
		eng, a, d, _, err := cfg.loadSynth(p, 0)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%dxB", p.NumA/base)
		best, _, err := minRGN(eng, label, a, d)
		if err != nil {
			eng.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, best)
		for _, alg := range algs {
			row, err := runJoin(eng, label, a, d, alg, containment.JoinOptions{})
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("%s/%v: %w", label, alg, err)
			}
			res.Rows = append(res.Rows, row)
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// E7 reproduces Figure 6(g): scalability on single-height datasets.
func E7(cfg Config) (*Result, error) {
	return scalability(cfg, "E7", "Scalability, single-height (Fig. 6(g))", false,
		[]containment.Algorithm{containment.SHCJ, containment.VPJ})
}

// E8 reproduces Figure 6(h): scalability on multiple-height datasets.
func E8(cfg Config) (*Result, error) {
	return scalability(cfg, "E8", "Scalability, multiple-height (Fig. 6(h))", true,
		[]containment.Algorithm{containment.MHCJRollup, containment.VPJ})
}

// A1 is the ablation behind the paper's remark that "MHCJ+Rollup
// outperforms MHCJ in all experiments": both algorithms across the
// multiple-height datasets.
func A1(cfg Config) (*Result, error) {
	res := &Result{ID: "A1", Title: "Ablation: MHCJ vs MHCJ+Rollup (multi-height datasets)"}
	for _, p := range workload.StandardDatasets(cfg.Scale, cfg.Seed) {
		if p.Name[0] != 'M' {
			continue
		}
		eng, a, d, _, err := cfg.loadSynth(p, 0)
		if err != nil {
			return nil, err
		}
		for _, alg := range []containment.Algorithm{containment.MHCJ, containment.MHCJRollup} {
			row, err := runJoin(eng, p.Name, a, d, alg, containment.JoinOptions{})
			if err != nil {
				eng.Close()
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// A3 quantifies VPJ's node replication (section 3.3's "usually
// negligible" claim) across all sixteen datasets.
func A3(cfg Config) (*Result, error) {
	res := &Result{ID: "A3", Title: "Ablation: VPJ node replication across datasets"}
	for _, p := range workload.StandardDatasets(cfg.Scale, cfg.Seed) {
		eng, a, d, data, err := cfg.loadSynth(p, 0)
		if err != nil {
			return nil, err
		}
		row, err := runJoin(eng, p.Name, a, d, containment.VPJ, containment.JoinOptions{})
		if err != nil {
			eng.Close()
			return nil, err
		}
		row.HeightsA, row.HeightsD = heightsOf(data.A), heightsOf(data.D)
		res.Rows = append(res.Rows, row)
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// A4 sweeps MHCJ+Rollup's target height on the MLLH dataset: the
// trade-off between partition count and false hits.
func A4(cfg Config) (*Result, error) {
	p, err := workload.Dataset("MLLH", cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	data, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	minH, maxH := 64, -1
	for _, c := range data.A {
		h := c.Height()
		if h < minH {
			minH = h
		}
		if h > maxH {
			maxH = h
		}
	}
	res := &Result{ID: "A4", Title: "Ablation: rollup target height sweep (MLLH)"}
	for target := minH; target <= maxH; target++ {
		eng, err := cfg.newEngine(0)
		if err != nil {
			return nil, err
		}
		a, err := eng.Load("A", data.A)
		if err != nil {
			eng.Close()
			return nil, err
		}
		d, err := eng.Load("D", data.D)
		if err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.DropCache(); err != nil {
			eng.Close()
			return nil, err
		}
		eng.ResetIOStats()
		r, err := eng.Join(a, d, containment.JoinOptions{Algorithm: containment.MHCJRollup, RollupTarget: target})
		if err != nil {
			eng.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Dataset:   fmt.Sprintf("target h=%d", target),
			Algorithm: "MHCJ+Rollup",
			Elapsed:   r.IO.VirtualTime + r.IO.WallTime,
			Wall:      r.IO.WallTime,
			IOs:       r.IO.Total(),
			Pairs:     r.Count,
			FalseHits: r.FalseHits,
			SizeA:     a.Len(),
			SizeD:     d.Len(),
		})
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// A2 reproduces the paper's unreported comparison (§4: "the two classes of
// algorithms have almost the same performance and thus their results are
// not reported"): the stack-tree join over native region-coded records
// (Start, End stored) versus the PBiTree-adapted one (Start, End derived
// from the code on the fly, Lemma 3), on identical inputs.
func A2(cfg Config) (*Result, error) {
	res := &Result{ID: "A2", Title: "Ablation: region-native vs PBiTree-adapted stack-tree"}
	for _, name := range []string{"SLLH", "SLLL", "MLLL"} {
		p, err := workload.Dataset(name, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		eng, a, d, _, err := cfg.loadSynth(p, 0)
		if err != nil {
			return nil, err
		}
		adapted, err := runJoin(eng, name, a, d, containment.StackTree, containment.JoinOptions{})
		if err != nil {
			eng.Close()
			return nil, err
		}
		adapted.Algorithm = "ST-PBiTree"
		res.Rows = append(res.Rows, adapted)
		native, err := eng.JoinRegionNative(a, d)
		if err != nil {
			eng.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Dataset:   name,
			Algorithm: "ST-Region",
			Elapsed:   native.IO.VirtualTime + native.IO.WallTime,
			Wall:      native.IO.WallTime,
			IOs:       native.IO.Total(),
			SeqIOs:    native.IO.SeqReads + native.IO.SeqWrites,
			Pairs:     native.Count,
			SizeA:     a.Len(),
			SizeD:     d.Len(),
		})
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// A5 validates the section 3.4 cost model (the basis of the cost-based
// selector of section 6): predicted vs measured page I/O for every bulk
// algorithm on representative datasets.
func A5(cfg Config) (*Result, error) {
	res := &Result{ID: "A5", Title: "Ablation: cost model predicted vs measured page I/O"}
	for _, name := range []string{"SLLH", "SLLL", "MLLL", "MSLH"} {
		p, err := workload.Dataset(name, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		eng, a, d, _, err := cfg.loadSynth(p, 0)
		if err != nil {
			return nil, err
		}
		for _, alg := range []containment.Algorithm{
			containment.MHCJRollup, containment.VPJ, containment.StackTree, containment.MPMGJN,
		} {
			row, err := runJoin(eng, name, a, d, alg, containment.JoinOptions{})
			if err != nil {
				eng.Close()
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// A6 reproduces the coding-space claim of §2.3.3: real document shapes
// embed into PBiTrees "within a constant number of levels", so codes stay
// well inside 64 bits as documents grow. Reported per document scale:
// element count, PBiTree height (= bits per code), and the utilization
// ratio elements / code space.
func A6(cfg Config) (*Result, error) {
	res := &Result{ID: "A6", Title: "Coding space: PBiTree height vs document size (§2.3.3)"}
	for _, sf := range []float64{0.01, 0.05, 0.25, 1} {
		scaled := cfg.DocScale * sf
		xm, err := workload.GenerateXMark(workload.XMark(scaled, cfg.Seed))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Dataset:   fmt.Sprintf("XMark x%g", sf),
			Algorithm: "encode",
			SizeA:     int64(xm.NumElements()),
			HeightsA:  xm.Height, // PBiTree height = bits per code
			Elapsed:   1,         // placeholder so renderers don't flag it
		})
		db, err := workload.GenerateDBLP(workload.DBLP(scaled, cfg.Seed))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Dataset:   fmt.Sprintf("DBLP x%g", sf),
			Algorithm: "encode",
			SizeA:     int64(db.NumElements()),
			HeightsA:  db.Height,
			Elapsed:   1,
		})
	}
	return res, nil
}

// A7 quantifies §3.1's remark that stack-tree output order "is favorable
// for further containment joins": a multi-step path query run as a
// pipelined chain of pure merges (every intermediate stays in document
// order, zero sorting) versus the same chain treating each intermediate
// as an unsorted set (each step re-partitions via MHCJ+Rollup).
func A7(cfg Config) (*Result, error) {
	doc, err := workload.GenerateXMark(workload.XMark(cfg.DocScale, cfg.Seed))
	if err != nil {
		return nil, err
	}
	paths := [][]string{
		{"item", "parlist", "listitem", "text"},
		{"open_auction", "annotation", "text"},
		{"regions", "item", "description", "listitem"},
	}
	res := &Result{ID: "A7", Title: "Ablation: pipelined (sorted) vs re-partitioned path queries"}
	for _, path := range paths {
		label := "//" + strings.Join(path, "//")
		eng, err := cfg.newEngine(0)
		if err != nil {
			return nil, err
		}
		// Pipelined: QueryPath chains pure stack-tree merges.
		if err := eng.DropCache(); err != nil {
			eng.Close()
			return nil, err
		}
		eng.ResetIOStats()
		start := time.Now()
		codes, err := eng.QueryPath(doc, path...)
		if err != nil {
			eng.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, pathRow(eng, label, "pipelined", int64(len(codes)), time.Since(start)))

		// Re-partitioned: every step joins an unsorted intermediate.
		if err := eng.DropCache(); err != nil {
			eng.Close()
			return nil, err
		}
		eng.ResetIOStats()
		start = time.Now()
		n, err := unsortedPath(eng, doc, path)
		if err != nil {
			eng.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, pathRow(eng, label, "re-partition", n, time.Since(start)))
		if n != int64(len(codes)) {
			eng.Close()
			return nil, fmt.Errorf("A7: strategies disagree on %s: %d vs %d", label, n, len(codes))
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// pathRow assembles a measurement row from the engine's counters.
func pathRow(eng *containment.Engine, dataset, algo string, pairs int64, wall time.Duration) Row {
	io := eng.IOStats()
	return Row{
		Dataset:   dataset,
		Algorithm: algo,
		Elapsed:   io.VirtualTime + wall,
		Wall:      wall,
		IOs:       io.Reads + io.Writes,
		SeqIOs:    io.SeqReads + io.SeqWrites,
		Pairs:     pairs,
	}
}

// unsortedPath evaluates the chain treating every intermediate as an
// unsorted set: each step a fresh MHCJ+Rollup with map-based
// deduplication, the strategy available without order-aware planning.
func unsortedPath(eng *containment.Engine, doc *xmltree.Document, tags []string) (int64, error) {
	cur := doc.Codes(tags[0])
	for step := 1; step < len(tags); step++ {
		if len(cur) == 0 {
			return 0, nil
		}
		a, err := eng.Load("np.a", cur)
		if err != nil {
			return 0, err
		}
		d, err := eng.Load("np.d", doc.Codes(tags[step]))
		if err != nil {
			return 0, err
		}
		matched := map[pbicode.Code]bool{}
		_, err = eng.Join(a, d, containment.JoinOptions{
			Algorithm: containment.MHCJRollup,
			Emit: func(p containment.Pair) error {
				matched[p.D] = true
				return nil
			},
		})
		if err != nil {
			return 0, err
		}
		if err := eng.Free(a); err != nil {
			return 0, err
		}
		if err := eng.Free(d); err != nil {
			return 0, err
		}
		cur = cur[:0]
		for c := range matched {
			cur = append(cur, c)
		}
	}
	return int64(len(cur)), nil
}

// A8 quantifies this implementation's one deliberate deviation from
// Algorithm 5: VPJ cut levels are chosen relative to the data's lowest
// common ancestor rather than the tree root. Documents embed lopsidedly
// into the PBiTree, so root-relative cuts concentrate everything in a few
// partitions and recurse; the ablation runs both variants on document
// joins.
func A8(cfg Config) (*Result, error) {
	doc, err := workload.GenerateXMark(workload.XMark(cfg.DocScale, cfg.Seed))
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "A8", Title: "Ablation: VPJ cut anchoring — LCA-relative vs root-relative (Algorithm 5 literal)"}
	for _, q := range []struct{ anc, desc string }{
		{"item", "text"},
		{"listitem", "text"},
		{"person", "city"},
	} {
		eng, err := cfg.newEngine(0)
		if err != nil {
			return nil, err
		}
		a, err := eng.LoadDoc(doc, q.anc)
		if err != nil {
			eng.Close()
			return nil, err
		}
		d, err := eng.LoadDoc(doc, q.desc)
		if err != nil {
			eng.Close()
			return nil, err
		}
		label := "//" + q.anc + "//" + q.desc
		lca, err := runJoin(eng, label, a, d, containment.VPJ, containment.JoinOptions{})
		if err != nil {
			eng.Close()
			return nil, err
		}
		lca.Algorithm = "VPJ-LCA"
		res.Rows = append(res.Rows, lca)
		root, err := runJoin(eng, label, a, d, containment.VPJ, containment.JoinOptions{VPJRootCut: true})
		if err != nil {
			eng.Close()
			return nil, err
		}
		root.Algorithm = "VPJ-root"
		res.Rows = append(res.Rows, root)
		if lca.Pairs != root.Pairs {
			eng.Close()
			return nil, fmt.Errorf("A8: variants disagree on %s", label)
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Batch measures the batched execution core against the record-at-a-time
// baseline on the ten DBLP joins D1-D10, at an equal buffer budget. The
// baseline runs the pre-batch code path over fixed-width pages; the batch
// configuration runs the columnar slab kernels over the delta-compressed
// page layout — the two halves of the "batch/vectorized execution core"
// change, measured together because they ship together as the default.
// Elapsed is virtual disk time plus wall CPU as everywhere in the
// harness, so the batch side's win combines fewer scanned pages
// (compression) with cheaper per-record work (slabs).
func Batch(cfg Config) (*Result, error) {
	doc, err := workload.GenerateDBLP(workload.DBLP(cfg.DocScale, cfg.Seed))
	if err != nil {
		return nil, err
	}
	modes := []struct {
		name     string
		noBatch  bool
		compress bool
	}{
		{"serial", true, false},
		{"batch", false, true},
	}
	res := &Result{ID: "batch", Title: "Batched execution vs record-at-a-time, DBLP D1-D10"}
	totals := make([]Row, len(modes))
	for _, q := range workload.DBLPQueries() {
		for m, mode := range modes {
			eng, err := containment.NewEngine(containment.Config{
				PageSize:    cfg.PageSize,
				BufferPages: cfg.BufferPages,
				DiskCost:    containment.DefaultDiskCost,
				NoBatch:     mode.noBatch,
				Compress:    mode.compress,
			})
			if err != nil {
				return nil, err
			}
			a, d, err := loadDocQuery(eng, doc, q)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("%s: %w", q.ID, err)
			}
			row, err := runJoin(eng, q.ID, a, d, containment.MHCJRollup, containment.JoinOptions{})
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("%s/%s: %w", q.ID, mode.name, err)
			}
			if err := eng.Close(); err != nil {
				return nil, err
			}
			row.Algorithm += "/" + mode.name
			res.Rows = append(res.Rows, row)
			t := &totals[m]
			t.Dataset = "D1-D10 mix"
			t.Algorithm = "MHCJRollup/" + mode.name
			t.Elapsed += row.Elapsed
			t.Wall += row.Wall
			t.IOs += row.IOs
			t.SeqIOs += row.SeqIOs
			t.Pairs += row.Pairs
			t.FalseHits += row.FalseHits
			t.Partitions += row.Partitions
		}
	}
	res.Rows = append(res.Rows, totals...)
	return res, nil
}

// Experiments maps experiment ids to their runners.
func Experiments() map[string]func(Config) (*Result, error) {
	return map[string]func(Config) (*Result, error){
		"e1": E1, "e2": E2, "e3": E3, "e4": E4,
		"e5": E5, "e6": E6, "e7": E7, "e8": E8,
		"a1": A1, "a2": A2, "a3": A3, "a4": A4, "a5": A5, "a6": A6, "a7": A7, "a8": A8,
		"batch": Batch,
	}
}

// Order lists experiment ids in presentation order.
var Order = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "batch"}
