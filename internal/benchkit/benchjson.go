package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// This file emits and checks benchmark records in the dev/bench data.js
// format of github-action-benchmark (`window.BENCHMARK_DATA = {...}`):
// one JS file holding every historical entry, appended to — never
// overwritten — so results/ doubles as a static chart page and CI can
// diff the newest run against the previous one.

// dataJSPrefix is the assignment wrapping the JSON payload in data.js.
const dataJSPrefix = "window.BENCHMARK_DATA = "

// BenchSuite is the entry series pbibench appends to.
const BenchSuite = "Containment join benchmarks"

// BenchCommit identifies the commit a benchmark entry measured.
type BenchCommit struct {
	ID        string `json:"id"`
	Message   string `json:"message"`
	Timestamp string `json:"timestamp"`
	URL       string `json:"url,omitempty"`
}

// BenchMetric is one measured series point.
type BenchMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// BenchEntry is one benchmark run: a commit plus its measurements.
type BenchEntry struct {
	Commit  BenchCommit   `json:"commit"`
	Date    int64         `json:"date"` // unix milliseconds
	Tool    string        `json:"tool"`
	Benches []BenchMetric `json:"benches"`
}

// BenchData is the whole data.js payload.
type BenchData struct {
	LastUpdate int64                   `json:"lastUpdate"`
	RepoURL    string                  `json:"repoUrl,omitempty"`
	Entries    map[string][]BenchEntry `json:"entries"`
}

// LoadBenchData parses a data.js file; a missing file yields an empty
// (appendable) payload, not an error.
func LoadBenchData(path string) (*BenchData, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &BenchData{Entries: map[string][]BenchEntry{}}, nil
	}
	if err != nil {
		return nil, err
	}
	text := strings.TrimSpace(string(raw))
	text = strings.TrimPrefix(text, dataJSPrefix)
	// Tolerate a trailing semicolon or window.dispatchEvent suffix line.
	if i := strings.LastIndexByte(text, '}'); i >= 0 {
		text = text[:i+1]
	}
	var d BenchData
	if err := json.Unmarshal([]byte(text), &d); err != nil {
		return nil, fmt.Errorf("benchkit: parse %s: %w", path, err)
	}
	if d.Entries == nil {
		d.Entries = map[string][]BenchEntry{}
	}
	return &d, nil
}

// Append adds an entry to a suite's history and bumps LastUpdate.
func (d *BenchData) Append(suite string, e BenchEntry) {
	d.Entries[suite] = append(d.Entries[suite], e)
	if e.Date > d.LastUpdate {
		d.LastUpdate = e.Date
	}
}

// Save writes the payload back as data.js, creating directories as
// needed. The write is atomic (temp file + rename) so a crashed run
// cannot truncate the history.
func (d *BenchData) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	body, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(dataJSPrefix+string(body)+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RowsToMetrics converts experiment rows to chartable metrics: elapsed
// (virtual disk + wall CPU) as the ns/op value — the harness's primary
// number and, being dominated by deterministic page counts times a fixed
// virtual cost, nearly host-independent — with page I/O in extra.
func RowsToMetrics(expID string, rows []Row) []BenchMetric {
	out := make([]BenchMetric, 0, len(rows))
	for _, r := range rows {
		out = append(out, BenchMetric{
			Name:  fmt.Sprintf("%s/%s/%s", expID, r.Dataset, r.Algorithm),
			Value: float64(r.Elapsed.Nanoseconds()),
			Unit:  "ns/op",
			Extra: fmt.Sprintf("pageIO=%d pairs=%d wall=%s", r.IOs, r.Pairs, r.Wall.Round(time.Microsecond)),
		})
	}
	return out
}

// Regression is one metric that got slower past the threshold.
type Regression struct {
	Name     string
	Old, New float64
	Ratio    float64 // New/Old
}

// checkFloorNs exempts tiny metrics from the regression gate: below
// ~100 ms the elapsed value is dominated by wall-clock scheduling noise
// rather than the deterministic virtual disk charge, so a relative
// threshold would fire spuriously. Aggregate rows (the D1-D10 mix) sit
// well above the floor and carry the gate.
const checkFloorNs = 100e6

// CheckRegression compares a suite's two newest entries metric by metric
// (ns/op units only, names present in both, either side >= checkFloorNs)
// and returns the metrics that slowed down by more than pct percent. ok
// is false when there are fewer than two entries to compare — the caller
// should skip, not fail.
func (d *BenchData) CheckRegression(suite string, pct float64) (regs []Regression, ok bool) {
	hist := d.Entries[suite]
	if len(hist) < 2 {
		return nil, false
	}
	prev, cur := hist[len(hist)-2], hist[len(hist)-1]
	base := map[string]float64{}
	for _, m := range prev.Benches {
		if m.Unit == "ns/op" && m.Value > 0 {
			base[m.Name] = m.Value
		}
	}
	for _, m := range cur.Benches {
		if m.Unit != "ns/op" {
			continue
		}
		old, have := base[m.Name]
		if !have || (old < checkFloorNs && m.Value < checkFloorNs) {
			continue
		}
		if m.Value > old*(1+pct/100) {
			regs = append(regs, Regression{Name: m.Name, Old: old, New: m.Value, Ratio: m.Value / old})
		}
	}
	return regs, true
}
