package benchkit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func entry(date int64, values map[string]float64) BenchEntry {
	e := BenchEntry{Date: date, Tool: "go", Commit: BenchCommit{ID: "abc"}}
	for name, v := range values {
		e.Benches = append(e.Benches, BenchMetric{Name: name, Value: v, Unit: "ns/op"})
	}
	return e
}

func TestBenchDataAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev", "bench", "data.js")

	// Missing file loads empty.
	d, err := LoadBenchData(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries[BenchSuite]) != 0 {
		t.Fatal("fresh payload not empty")
	}

	// Append twice across separate load/save cycles: history must grow,
	// never be overwritten.
	for i := int64(1); i <= 2; i++ {
		d, err := LoadBenchData(path)
		if err != nil {
			t.Fatal(err)
		}
		d.Append(BenchSuite, entry(i, map[string]float64{"batch/mix/serial": 4e8}))
		if err := d.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "window.BENCHMARK_DATA = {") {
		t.Fatalf("data.js prefix missing: %q", raw[:40])
	}
	d, err = LoadBenchData(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Entries[BenchSuite]); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	if d.LastUpdate != 2 {
		t.Fatalf("LastUpdate = %d, want 2", d.LastUpdate)
	}
}

func TestCheckRegression(t *testing.T) {
	d := &BenchData{Entries: map[string][]BenchEntry{}}

	// Fewer than two entries: skip, not fail.
	if _, ok := d.CheckRegression(BenchSuite, 15); ok {
		t.Fatal("check ran with no baseline")
	}
	d.Append(BenchSuite, entry(1, map[string]float64{"big": 4e8, "small": 1e7}))
	if _, ok := d.CheckRegression(BenchSuite, 15); ok {
		t.Fatal("check ran with one entry")
	}

	// Second entry: "big" regresses 50%, "small" regresses 10x but sits
	// under the noise floor, "new" has no baseline.
	d.Append(BenchSuite, entry(2, map[string]float64{"big": 6e8, "small": 1e8 - 1, "new": 9e9}))
	regs, ok := d.CheckRegression(BenchSuite, 15)
	if !ok {
		t.Fatal("check skipped with two entries")
	}
	if len(regs) != 1 || regs[0].Name != "big" {
		t.Fatalf("regressions = %+v, want just big", regs)
	}
	if regs[0].Ratio < 1.49 || regs[0].Ratio > 1.51 {
		t.Fatalf("ratio = %v, want 1.5", regs[0].Ratio)
	}

	// Within threshold: clean.
	d.Append(BenchSuite, entry(3, map[string]float64{"big": 6.5e8}))
	if regs, _ := d.CheckRegression(BenchSuite, 15); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}
}

func TestRowsToMetrics(t *testing.T) {
	rows := []Row{{Dataset: "D1", Algorithm: "MHCJ/batch", Elapsed: 250 * time.Millisecond, IOs: 42}}
	ms := RowsToMetrics("batch", rows)
	if len(ms) != 1 {
		t.Fatalf("metrics = %d", len(ms))
	}
	m := ms[0]
	if m.Name != "batch/D1/MHCJ/batch" || m.Unit != "ns/op" || m.Value != 2.5e8 {
		t.Fatalf("metric = %+v", m)
	}
	if !strings.Contains(m.Extra, "pageIO=42") {
		t.Fatalf("extra = %q", m.Extra)
	}
}
