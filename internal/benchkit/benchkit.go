// Package benchkit is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (section 4) — E1 through E8 — plus
// the ablations DESIGN.md calls out (A1–A4). Each experiment returns
// structured rows and can render them as the paper's tables; cmd/pbibench
// and the repository's benchmarks drive the same code.
//
// Elapsed times are virtual disk time plus measured CPU time: the paper's
// numbers are I/O-bound measurements on a 2003-era disk, which the
// storage layer's virtual clock models (see DESIGN.md). Raw page I/O
// counts are reported alongside.
package benchkit

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/pbitree/pbitree/containment"
	"github.com/pbitree/pbitree/internal/workload"
	"github.com/pbitree/pbitree/pbicode"
	"github.com/pbitree/pbitree/xmltree"
)

// Config configures a harness run.
type Config struct {
	// Scale scales the synthetic sets: 1.0 = the paper's 1e6/1e4.
	Scale float64
	// DocScale scales the DBLP and XMark documents: 1.0 = paper size.
	DocScale float64
	// BufferPages is the pool size b; the paper uses 500.
	BufferPages int
	// PageSize in bytes.
	PageSize int
	// Seed fixes all generators.
	Seed int64
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
}

// Default returns a configuration sized for interactive runs (about 1/50
// of the paper's scale). Use Scale = DocScale = 1 for the full setup.
func Default() Config {
	return Config{
		Scale:       0.02,
		DocScale:    0.02,
		BufferPages: 500,
		PageSize:    4096,
		Seed:        1,
	}
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// Row is one (dataset, algorithm) measurement.
type Row struct {
	Dataset   string
	Algorithm string
	// Elapsed is virtual disk time + measured compute time, the
	// harness's analogue of the paper's elapsed seconds.
	Elapsed time.Duration
	// Wall is the raw measured host time.
	Wall time.Duration
	// IOs is total page reads+writes; SeqIOs the sequential subset.
	IOs    int64
	SeqIOs int64
	// Pairs, FalseHits, Replicated, Partitions are algorithm counters.
	Pairs      int64
	FalseHits  int64
	Replicated int64
	Partitions int64
	// PredictedIO is the cost model's estimate (ablation A5).
	PredictedIO int64
	// SizeA/SizeD/HeightsA/HeightsD describe the inputs (dataset tables).
	SizeA, SizeD       int64
	HeightsA, HeightsD int
}

// runJoin evaluates one algorithm over loaded relations with a cold cache
// and returns its measurement row.
func runJoin(eng *containment.Engine, ds string, a, d *containment.Relation, alg containment.Algorithm, opts containment.JoinOptions) (Row, error) {
	if err := eng.DropCache(); err != nil {
		return Row{}, err
	}
	eng.ResetIOStats()
	opts.Algorithm = alg
	res, err := eng.Join(a, d, opts)
	if err != nil {
		return Row{}, err
	}
	return Row{
		Dataset:     ds,
		Algorithm:   res.Algorithm,
		Elapsed:     res.IO.VirtualTime + res.IO.WallTime,
		Wall:        res.IO.WallTime,
		IOs:         res.IO.Total(),
		SeqIOs:      res.IO.SeqReads + res.IO.SeqWrites,
		Pairs:       res.Count,
		FalseHits:   res.FalseHits,
		Replicated:  res.Replicated,
		Partitions:  res.Partitions,
		PredictedIO: res.PredictedIO,
		SizeA:       a.Len(),
		SizeD:       d.Len(),
	}, nil
}

// newEngine builds an engine per the config with the virtual disk enabled.
func (c Config) newEngine(bufferPages int) (*containment.Engine, error) {
	if bufferPages == 0 {
		bufferPages = c.BufferPages
	}
	return containment.NewEngine(containment.Config{
		PageSize:    c.PageSize,
		BufferPages: bufferPages,
		DiskCost:    containment.DefaultDiskCost,
	})
}

// loadSynth generates the dataset and loads it into a fresh engine.
func (c Config) loadSynth(p workload.SynthParams, bufferPages int) (*containment.Engine, *containment.Relation, *containment.Relation, *workload.SynthData, error) {
	data, err := workload.Generate(p)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	eng, err := c.newEngine(bufferPages)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	a, err := eng.Load("A."+p.Name, data.A)
	if err != nil {
		eng.Close()
		return nil, nil, nil, nil, err
	}
	d, err := eng.Load("D."+p.Name, data.D)
	if err != nil {
		eng.Close()
		return nil, nil, nil, nil, err
	}
	return eng, a, d, data, nil
}

// baselines are the region-code algorithms whose minimum forms MIN_RGN.
var baselines = []containment.Algorithm{
	containment.INLJN,
	containment.StackTree,
	containment.ADBPlus,
}

// minRGN runs the three baselines and returns the best row relabelled
// MIN_RGN, plus the individual rows.
func minRGN(eng *containment.Engine, ds string, a, d *containment.Relation) (Row, []Row, error) {
	var best Row
	var all []Row
	for i, alg := range baselines {
		row, err := runJoin(eng, ds, a, d, alg, containment.JoinOptions{})
		if err != nil {
			return Row{}, nil, fmt.Errorf("%s/%v: %w", ds, alg, err)
		}
		all = append(all, row)
		if i == 0 || row.Elapsed < best.Elapsed {
			best = row
		}
	}
	best.Algorithm = "MIN_RGN"
	return best, all, nil
}

// improvement returns the paper's improvement ratio
// (T_MIN_RGN - T_alg) / T_MIN_RGN.
func improvement(minRgn, alg Row) float64 {
	if minRgn.Elapsed <= 0 {
		return 0
	}
	return float64(minRgn.Elapsed-alg.Elapsed) / float64(minRgn.Elapsed)
}

// Result groups an experiment's rows with its identity.
type Result struct {
	ID    string
	Title string
	Rows  []Row
}

// sortRows orders rows by dataset then algorithm for stable rendering.
func sortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Dataset != rows[j].Dataset {
			return rows[i].Dataset < rows[j].Dataset
		}
		return rows[i].Algorithm < rows[j].Algorithm
	})
}

// heightsOf counts distinct code heights.
func heightsOf(codes []pbicode.Code) int {
	set := map[int]bool{}
	for _, c := range codes {
		set[c.Height()] = true
	}
	return len(set)
}

// loadDocQuery loads one query's tag sets from a document.
func loadDocQuery(eng *containment.Engine, doc *xmltree.Document, q workload.Query) (*containment.Relation, *containment.Relation, error) {
	a, err := eng.LoadDoc(doc, q.AncTag)
	if err != nil {
		return nil, nil, err
	}
	d, err := eng.LoadDoc(doc, q.DescTag)
	if err != nil {
		return nil, nil, err
	}
	return a, d, nil
}
