// Package telemetry is the persistent query-telemetry sidecar: an
// append-only JSONL writer that records one line per completed query —
// trace ID, algorithm, phase self-times, actual vs predicted page I/O,
// cache and admission outcome — so offline consumers (the ROADMAP's
// cost-model-calibrating planner, continuous benchmarking) can read
// durable per-query records without scraping /metrics.
//
// The design constraint is that telemetry must never slow a query down.
// Enqueue is non-blocking: records go into a bounded channel and a single
// background goroutine marshals and appends them. When the sink stalls or
// the queue fills, records are dropped and a counter incremented — the
// request path never waits. Writes are buffered and fsync-free; rotation
// is size-based with a cap on retained files, so a long-lived server
// bounds its disk footprint.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pbitree/pbitree/internal/trace"
)

// Phase is one span of the query's execution, flattened for JSONL: the
// phase name with its nesting depth, its self-attributed wall time, and
// its self-attributed counters.
type Phase struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	Depth  int    `json:"depth"`
	// SelfUS is the phase's wall time net of child phases, in microseconds.
	SelfUS int64 `json:"self_us"`
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	// VirtualUS is the virtual disk clock's self-attributed charge.
	VirtualUS int64 `json:"virtual_us,omitempty"`
	Pairs     int64 `json:"pairs,omitempty"`
}

// Record is one query's telemetry line. Every completed query produces
// exactly one.
type Record struct {
	TS      string `json:"ts"`
	TraceID string `json:"trace_id"`
	// Node identifies the emitting process when it is not implied by the
	// file's location (the router sets "router").
	Node string `json:"node,omitempty"`
	// Endpoint is the serving endpoint ("/join", "/query").
	Endpoint string `json:"endpoint"`
	// Query is the logical query ("anc/desc" for joins, the path
	// expression for path queries).
	Query  string `json:"query"`
	Status int    `json:"status"`
	// Outcome classifies how the query ended: ok, cached, rejected,
	// canceled, timeout, not_found, error.
	Outcome   string `json:"outcome"`
	Algorithm string `json:"algorithm,omitempty"`
	// Epoch is the ingest epoch current when the record was emitted (0 on
	// servers without a live write path) — it correlates latency or I/O
	// shifts with epoch swaps and compactions.
	Epoch  int64 `json:"epoch,omitempty"`
	WallUS int64 `json:"wall_us"`
	PageIO int64 `json:"page_io,omitempty"`
	// PredictedIO is the section 3.4 cost model's estimate; IORatio is
	// actual/predicted (0 when no prediction exists).
	PredictedIO int64   `json:"predicted_io,omitempty"`
	IORatio     float64 `json:"io_ratio,omitempty"`
	Phases      []Phase `json:"phases,omitempty"`
	// Spans is the full span tree, captured only for queries at or above
	// the writer's slow-query threshold.
	Spans []*trace.WireSpan `json:"spans,omitempty"`
}

// Outcome classifies a finished request's HTTP status (plus cache
// disposition) into the record outcome vocabulary shared by every
// emitter (pbiserve and pbirouter): ok, cached, rejected, canceled,
// timeout, not_found, error. 499 is the nginx-convention status both
// servers use for client-abandoned requests.
func Outcome(status int, cached bool) string {
	switch {
	case status == 200 && cached:
		return "cached"
	case status == 200:
		return "ok"
	case status == 503:
		return "rejected"
	case status == 499:
		return "canceled"
	case status == 504:
		return "timeout"
	case status == 404:
		return "not_found"
	default:
		return "error"
	}
}

// Config sizes a Writer. Zero values take the defaults noted per field.
type Config struct {
	// Dir is the directory for telemetry-NNNNNN.jsonl files; required.
	Dir string
	// MaxFileBytes rotates the current file once it exceeds this size.
	// Default 8 MiB.
	MaxFileBytes int64
	// MaxFiles caps how many rotated files are retained (oldest pruned).
	// Default 4.
	MaxFiles int
	// QueueDepth bounds the in-flight record queue. Default 1024.
	QueueDepth int
	// SlowQuery is the wall-time threshold at or above which a record
	// keeps its full span tree. Zero means spans are always stripped.
	SlowQuery time.Duration
}

func (c *Config) fill() {
	if c.MaxFileBytes <= 0 {
		c.MaxFileBytes = 8 << 20
	}
	if c.MaxFiles <= 0 {
		c.MaxFiles = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
}

// Writer appends query records to a JSONL sink from a single background
// goroutine. Enqueue never blocks. A nil *Writer is the disabled state:
// every method is a no-op, so call sites need no enabled-check.
type Writer struct {
	cfg     Config
	ch      chan *Record
	done    chan struct{}
	sink    sink
	written atomic.Int64
	dropped atomic.Int64
	closed  atomic.Bool
}

// sink is where marshalled lines go. fileSink rotates; tests inject a
// writerSink (possibly one that blocks) to exercise the drop path.
type sink interface {
	writeLine(line []byte) error
	close() error
}

// New opens a Writer over a rotating file sink in cfg.Dir, creating the
// directory if needed.
func New(cfg Config) (*Writer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("telemetry: Dir is required")
	}
	cfg.fill()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	fs, err := newFileSink(cfg.Dir, cfg.MaxFileBytes, cfg.MaxFiles)
	if err != nil {
		return nil, err
	}
	return newWriter(cfg, fs), nil
}

// NewWithSink is New with a caller-supplied sink — the test seam for
// blocked-sink and in-memory runs.
func NewWithSink(cfg Config, s sink) *Writer {
	cfg.fill()
	return newWriter(cfg, s)
}

// SinkFunc adapts a function to the sink interface (close is a no-op).
type SinkFunc func(line []byte) error

func (f SinkFunc) writeLine(line []byte) error { return f(line) }
func (f SinkFunc) close() error                { return nil }

func newWriter(cfg Config, s sink) *Writer {
	w := &Writer{
		cfg:  cfg,
		ch:   make(chan *Record, cfg.QueueDepth),
		done: make(chan struct{}),
		sink: s,
	}
	go w.drain()
	return w
}

// Enqueue hands rec to the background writer without blocking. If the
// queue is full (sink stalled or overwhelmed) the record is dropped and
// the dropped counter incremented — the request path never waits on disk.
func (w *Writer) Enqueue(rec *Record) {
	if w == nil || rec == nil || w.closed.Load() {
		return
	}
	if w.cfg.SlowQuery == 0 || time.Duration(rec.WallUS)*time.Microsecond < w.cfg.SlowQuery {
		rec.Spans = nil
	}
	select {
	case w.ch <- rec:
	default:
		w.dropped.Add(1)
	}
}

func (w *Writer) drain() {
	defer close(w.done)
	for rec := range w.ch {
		line, err := json.Marshal(rec)
		if err != nil {
			w.dropped.Add(1)
			continue
		}
		if err := w.sink.writeLine(line); err != nil {
			w.dropped.Add(1)
			continue
		}
		w.written.Add(1)
	}
}

// Written reports how many records reached the sink.
func (w *Writer) Written() int64 {
	if w == nil {
		return 0
	}
	return w.written.Load()
}

// Dropped reports how many records were discarded (queue full, marshal or
// sink error).
func (w *Writer) Dropped() int64 {
	if w == nil {
		return 0
	}
	return w.dropped.Load()
}

// SlowQuery reports the configured slow-query threshold.
func (w *Writer) SlowQuery() time.Duration {
	if w == nil {
		return 0
	}
	return w.cfg.SlowQuery
}

// Close stops accepting records, drains the queue to the sink, and closes
// it. Safe to call more than once.
func (w *Writer) Close() error {
	if w == nil || !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(w.ch)
	<-w.done
	return w.sink.close()
}

// fileSink appends lines to telemetry-NNNNNN.jsonl files in dir, rotating
// past maxBytes and pruning down to maxFiles. The write path is buffered
// and never fsyncs; durability is best-effort by design.
type fileSink struct {
	dir      string
	maxBytes int64
	maxFiles int
	seq      int
	size     int64
	f        *os.File
	bw       *bufio.Writer
	mu       sync.Mutex
}

const filePrefix = "telemetry-"

func newFileSink(dir string, maxBytes int64, maxFiles int) (*fileSink, error) {
	s := &fileSink{dir: dir, maxBytes: maxBytes, maxFiles: maxFiles}
	// Resume after the highest existing sequence number so a restart never
	// clobbers prior telemetry.
	for _, name := range listTelemetryFiles(dir) {
		var n int
		if _, err := fmt.Sscanf(name, filePrefix+"%06d.jsonl", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	s.seq++
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

func listTelemetryFiles(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), filePrefix) && strings.HasSuffix(e.Name(), ".jsonl") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func (s *fileSink) open() error {
	f, err := os.OpenFile(s.path(s.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("telemetry: %w", err)
	}
	s.f, s.bw, s.size = f, bufio.NewWriterSize(f, 32<<10), st.Size()
	return nil
}

func (s *fileSink) path(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d.jsonl", filePrefix, seq))
}

func (s *fileSink) writeLine(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size >= s.maxBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	n, err := s.bw.Write(line)
	s.size += int64(n)
	if err != nil {
		return err
	}
	if err := s.bw.WriteByte('\n'); err != nil {
		return err
	}
	s.size++
	// Flush per record: lines are small, the buffer only smooths syscalls
	// within a record, and readers (smoke scripts, jq) see complete lines
	// promptly without any fsync.
	return s.bw.Flush()
}

func (s *fileSink) rotate() error {
	s.bw.Flush()
	s.f.Close()
	s.seq++
	if err := s.open(); err != nil {
		return err
	}
	s.prune()
	return nil
}

// prune deletes the oldest rotated files beyond the retention cap.
func (s *fileSink) prune() {
	names := listTelemetryFiles(s.dir)
	for len(names) > s.maxFiles {
		os.Remove(filepath.Join(s.dir, names[0]))
		names = names[1:]
	}
}

func (s *fileSink) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw != nil {
		s.bw.Flush()
	}
	if s.f != nil {
		return s.f.Close()
	}
	return nil
}

// blockedSink blocks every write until released — the test double for a
// wedged disk. Exported for the qserv -race test.
type blockedSink struct {
	release chan struct{}
	once    sync.Once
}

// NewBlockedSink returns a sink whose writes all block until Release.
func NewBlockedSink() *BlockedSink {
	return &BlockedSink{inner: blockedSink{release: make(chan struct{})}}
}

// BlockedSink is a sink that never completes a write until released.
type BlockedSink struct{ inner blockedSink }

func (b *BlockedSink) writeLine([]byte) error {
	<-b.inner.release
	return io.ErrClosedPipe
}

func (b *BlockedSink) close() error {
	b.Release()
	return nil
}

// Release unblocks all pending and future writes (they then fail, which
// counts as dropped).
func (b *BlockedSink) Release() {
	b.inner.once.Do(func() { close(b.inner.release) })
}
