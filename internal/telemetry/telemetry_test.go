package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pbitree/pbitree/internal/trace"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWriterAppendsJSONL(t *testing.T) {
	dir := t.TempDir()
	w, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Enqueue(&Record{
			TraceID: fmt.Sprintf("t%d", i), Endpoint: "/join",
			Query: "a/b", Status: 200, Outcome: "ok",
			WallUS: int64(i), PageIO: 10, PredictedIO: 8, IORatio: 1.25,
			Phases: []Phase{{Name: "sort", Depth: 1, SelfUS: 3, Reads: 4}},
		})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 10 || w.Dropped() != 0 {
		t.Fatalf("written=%d dropped=%d, want 10/0", w.Written(), w.Dropped())
	}
	names := listTelemetryFiles(dir)
	if len(names) != 1 {
		t.Fatalf("files = %v, want one", names)
	}
	data, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 10 {
		t.Fatalf("lines = %d, want 10", len(lines))
	}
	for i, ln := range lines {
		var rec Record
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if rec.TraceID != fmt.Sprintf("t%d", i) {
			t.Fatalf("line %d out of order: %q", i, rec.TraceID)
		}
		if rec.IORatio != 1.25 || len(rec.Phases) != 1 {
			t.Fatalf("line %d lost fields: %+v", i, rec)
		}
	}
}

func TestRotationCapsDirectory(t *testing.T) {
	dir := t.TempDir()
	w, err := New(Config{Dir: dir, MaxFileBytes: 512, MaxFiles: 3})
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 200)
	for i := 0; i < 50; i++ {
		w.Enqueue(&Record{TraceID: fmt.Sprintf("t%03d", i), Query: pad, Outcome: "ok"})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names := listTelemetryFiles(dir)
	if len(names) > 3 {
		t.Fatalf("retained %d files, cap is 3: %v", len(names), names)
	}
	var total int64
	for _, n := range names {
		st, err := os.Stat(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	// Each file may exceed MaxFileBytes by at most one record, so the
	// directory is bounded by roughly MaxFiles * (MaxFileBytes + one line).
	if limit := int64(3 * (512 + 1024)); total > limit {
		t.Fatalf("directory size %d exceeds bound %d", total, limit)
	}
}

func TestRestartResumesSequence(t *testing.T) {
	dir := t.TempDir()
	w, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Enqueue(&Record{TraceID: "a", Outcome: "ok"})
	w.Close()
	w2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w2.Enqueue(&Record{TraceID: "b", Outcome: "ok"})
	w2.Close()
	names := listTelemetryFiles(dir)
	if len(names) != 2 {
		t.Fatalf("restart should open a new sequence file, got %v", names)
	}
}

func TestSlowQueryKeepsSpans(t *testing.T) {
	var mu sync.Mutex
	var lines [][]byte
	s := SinkFunc(func(line []byte) error {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, append([]byte(nil), line...))
		return nil
	})
	w := NewWithSink(Config{SlowQuery: time.Millisecond}, s)
	spans := []*trace.WireSpan{{Name: "join", WallNS: 5e6, Reads: 3}}
	w.Enqueue(&Record{TraceID: "fast", WallUS: 10, Spans: spans})
	w.Enqueue(&Record{TraceID: "slow", WallUS: 5000, Spans: spans})
	w.Close()
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var fast, slow Record
	if err := json.Unmarshal(lines[0], &fast); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(lines[1], &slow); err != nil {
		t.Fatal(err)
	}
	if fast.Spans != nil {
		t.Fatal("fast query kept its span tree")
	}
	if len(slow.Spans) != 1 || slow.Spans[0].Reads != 3 {
		t.Fatalf("slow query lost its span tree: %+v", slow.Spans)
	}
}

// The drop path: a wedged sink must never block Enqueue. Run under -race
// with concurrent enqueuers to prove the hot path stays wait-free.
func TestBlockedSinkDropsWithoutStalling(t *testing.T) {
	bs := NewBlockedSink()
	w := NewWithSink(Config{QueueDepth: 4}, bs)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Enqueue(&Record{TraceID: fmt.Sprintf("g%d-%d", g, i), Outcome: "ok"})
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 800 enqueues against a fully wedged sink: if any enqueue blocked,
	// this would hang until the sink released. Allow generous slack for CI.
	if elapsed > 2*time.Second {
		t.Fatalf("enqueues took %v against a blocked sink", elapsed)
	}
	// Queue depth 4 plus the one record in-flight in the drain goroutine:
	// nearly everything must have been dropped, none written.
	waitFor(t, "drops", func() bool { return w.Dropped() >= workers*per-5 })
	if w.Written() != 0 {
		t.Fatalf("written = %d through a blocked sink", w.Written())
	}
	bs.Release()
	w.Close()
}

func TestNilWriterIsInert(t *testing.T) {
	var w *Writer
	w.Enqueue(&Record{TraceID: "x"})
	if w.Written() != 0 || w.Dropped() != 0 || w.SlowQuery() != 0 {
		t.Fatal("nil writer must report zeros")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEnqueueAfterCloseIsDropped(t *testing.T) {
	w := NewWithSink(Config{}, SinkFunc(func([]byte) error { return nil }))
	w.Close()
	// Must not panic (send on closed channel) and must not block.
	w.Enqueue(&Record{TraceID: "late"})
}
