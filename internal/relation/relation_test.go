package relation

import (
	"errors"
	"testing"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
)

func newPool(t *testing.T, b int) *buffer.Pool {
	t.Helper()
	d := storage.NewMemDisk(256, storage.CostModel{})
	t.Cleanup(func() { d.Close() })
	return buffer.New(d, b)
}

func TestPerPage(t *testing.T) {
	if got := PerPage(256); got != (256-8)/16 {
		t.Fatalf("PerPage(256) = %d", got)
	}
	if got := PerPage(4096); got != 255 {
		t.Fatalf("PerPage(4096) = %d", got)
	}
}

func TestAppendScanRoundtrip(t *testing.T) {
	pool := newPool(t, 4)
	r := New(pool, "t")
	const n = 100 // several pages at 15 recs/page
	want := make([]Rec, n)
	for i := range want {
		want[i] = Rec{Code: pbicode.Code(i + 1), Aux: uint64(i * 7)}
	}
	if err := r.Append(want...); err != nil {
		t.Fatal(err)
	}
	if r.NumRecords() != n {
		t.Fatalf("NumRecords = %d", r.NumRecords())
	}
	if wantPages := int64((n + 14) / 15); r.NumPages() != wantPages {
		t.Fatalf("NumPages = %d, want %d", r.NumPages(), wantPages)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("ReadAll len = %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rec %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if pool.PinnedFrames() != 0 {
		t.Fatalf("leaked pins: %d", pool.PinnedFrames())
	}
}

func TestAppenderSpansBatches(t *testing.T) {
	pool := newPool(t, 4)
	r := New(pool, "t")
	a := r.NewAppender()
	for i := 0; i < 20; i++ {
		if err := a.Append(Rec{Code: pbicode.Code(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// A second appender resumes the partial tail page; records still scan
	// in append order.
	if err := r.Append(Rec{Code: 100}); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 21 || got[20].Code != 100 {
		t.Fatalf("got %d recs, last %v", len(got), got[len(got)-1])
	}
}

func TestFromCodes(t *testing.T) {
	pool := newPool(t, 4)
	r, err := FromCodes(pool, "c", []pbicode.Code{5, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != (Rec{Code: 3, Aux: 1}) {
		t.Fatalf("got %+v", got)
	}
	if r.Name() != "c" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestEmptyRelation(t *testing.T) {
	pool := newPool(t, 2)
	r := New(pool, "e")
	got, err := r.ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadAll = %v, %v", got, err)
	}
	s := r.Scan()
	if s.Next() {
		t.Fatal("Next on empty relation")
	}
	s.Close()
	if r.NumPages() != 0 || r.NumRecords() != 0 {
		t.Fatal("empty relation has pages")
	}
}

func TestScannerCloseMidway(t *testing.T) {
	pool := newPool(t, 4)
	r := New(pool, "t")
	for i := 0; i < 50; i++ {
		if err := r.Append(Rec{Code: pbicode.Code(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Scan()
	if !s.Next() {
		t.Fatal("no first record")
	}
	s.Close()
	if pool.PinnedFrames() != 0 {
		t.Fatalf("pin leaked after Close: %d", pool.PinnedFrames())
	}
	s.Close() // double close is safe
}

func TestFreeReleasesFrames(t *testing.T) {
	pool := newPool(t, 4)
	r := New(pool, "t")
	for i := 0; i < 30; i++ {
		if err := r.Append(Rec{Code: pbicode.Code(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Free(); err != nil {
		t.Fatal(err)
	}
	if r.NumPages() != 0 || r.NumRecords() != 0 {
		t.Fatal("Free did not reset")
	}
}

func TestScanErrorPropagates(t *testing.T) {
	d := storage.NewMemDisk(256, storage.CostModel{})
	fd := storage.NewFaultDisk(d)
	pool := buffer.New(fd, 2)
	r := New(pool, "t")
	for i := 0; i < 40; i++ { // several pages
		if err := r.Append(Rec{Code: pbicode.Code(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Force pages out so the scan must hit the disk, then poison reads.
	for id := storage.PageID(0); id < d.NumPages(); id++ {
		if err := pool.Evict(id); err != nil {
			t.Fatal(err)
		}
	}
	fd.FailReadAfter = 2
	s := r.Scan()
	n := 0
	for s.Next() {
		n++
	}
	if !errors.Is(s.Err(), storage.ErrInjected) {
		t.Fatalf("Err = %v after %d recs", s.Err(), n)
	}
	if s.Next() {
		t.Fatal("Next true after error")
	}
	s.Close()
	if pool.PinnedFrames() != 0 {
		t.Fatal("pins leaked on error path")
	}
}

func TestAppendErrorPropagates(t *testing.T) {
	d := storage.NewMemDisk(256, storage.CostModel{})
	fd := storage.NewFaultDisk(d)
	pool := buffer.New(fd, 2)
	r := New(pool, "t")
	fd.FailAllocAfter = 1
	if err := r.Append(Rec{Code: 1}); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Append = %v", err)
	}
}

func TestSpan(t *testing.T) {
	pool := newPool(t, 4)
	r := New(pool, "t")
	if _, ok := r.Span(); ok {
		t.Fatal("empty relation has a span")
	}
	// Codes 6 (region 5..7) and 24 (region 17..31) in an h=5 tree.
	if err := r.Append(Rec{Code: 6}, Rec{Code: 24}); err != nil {
		t.Fatal(err)
	}
	span, ok := r.Span()
	if !ok || span.Start != 5 || span.End != 31 {
		t.Fatalf("Span = %+v, %v", span, ok)
	}
	// Free resets the span with the records.
	if err := r.Free(); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Span(); ok {
		t.Fatal("span survived Free")
	}
	if err := r.Append(Rec{Code: 2}); err != nil {
		t.Fatal(err)
	}
	span, _ = r.Span()
	if span.Start != 1 || span.End != 3 {
		t.Fatalf("span after Free+Append = %+v", span)
	}
}

func TestScanFromPos(t *testing.T) {
	pool := newPool(t, 4)
	r := New(pool, "t")
	const n = 50
	for i := 0; i < n; i++ {
		if err := r.Append(Rec{Code: pbicode.Code(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Record positions as we scan, then resume from each and check the
	// suffix.
	var positions []Pos
	s := r.Scan()
	positions = append(positions, s.Pos()) // start
	for s.Next() {
		positions = append(positions, s.Pos())
	}
	s.Close()
	if len(positions) != n+1 {
		t.Fatalf("positions = %d", len(positions))
	}
	for i, p := range positions {
		rs := r.ScanFrom(p)
		count := 0
		want := pbicode.Code(i + 1)
		for rs.Next() {
			if count == 0 && rs.Rec().Code != want {
				t.Fatalf("resume at %d: first rec %v, want %v", i, rs.Rec().Code, want)
			}
			count++
		}
		rs.Close()
		if count != n-i {
			t.Fatalf("resume at %d: %d records, want %d", i, count, n-i)
		}
	}
}

func TestIOAccountingThroughPool(t *testing.T) {
	// With a pool larger than the relation, appends and scans should cost
	// exactly one write per page (at flush) and zero reads.
	d := storage.NewMemDisk(256, storage.CostModel{})
	pool := buffer.New(d, 16)
	r := New(pool, "t")
	for i := 0; i < 45; i++ { // 3 pages
		if err := r.Append(Rec{Code: pbicode.Code(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Reads; got != 0 {
		t.Fatalf("reads with resident pages = %d", got)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Writes; got != 3 {
		t.Fatalf("writes = %d, want 3", got)
	}
}
