package relation

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
)

// roundTrip appends recs to a relation with the given compress setting and
// reads them back through both the row scanner and the batch scanner,
// failing on any mismatch.
func roundTrip(t *testing.T, pool *buffer.Pool, name string, compress bool, recs []Rec) *Relation {
	t.Helper()
	r := New(pool, name)
	r.SetCompress(compress)
	if err := r.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if r.NumRecords() != int64(len(recs)) {
		t.Fatalf("NumRecords = %d, want %d", r.NumRecords(), len(recs))
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("ReadAll: %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	var batch []Rec
	bs := r.BatchScan()
	for bs.Next() {
		codes, aux := bs.Codes(), bs.Aux()
		for i := range codes {
			batch = append(batch, Rec{Code: pbicode.Code(codes[i]), Aux: aux[i]})
		}
	}
	if err := bs.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, recs) && !(len(batch) == 0 && len(recs) == 0) {
		t.Fatalf("batch scan diverges from input (%d vs %d records)", len(batch), len(recs))
	}
	return r
}

func TestCompressedRoundTripSorted(t *testing.T) {
	pool := newPool(t, 8)
	recs := make([]Rec, 2000)
	c := uint64(0)
	rng := rand.New(rand.NewSource(1))
	for i := range recs {
		c += uint64(rng.Intn(64) + 1)
		recs[i] = Rec{Code: pbicode.Code(c), Aux: uint64(i)}
	}
	r := roundTrip(t, pool, "sorted", true, recs)
	li, err := r.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if li.CompressedPages != li.Pages || li.FixedPages != 0 {
		t.Fatalf("layout: %+v, want all pages compressed", li)
	}
	if li.Pages >= li.FixedEquivPages {
		t.Fatalf("sorted small-delta codes did not compress: %d pages vs %d fixed-equivalent", li.Pages, li.FixedEquivPages)
	}
	if li.Records != int64(len(recs)) {
		t.Fatalf("layout records = %d, want %d", li.Records, len(recs))
	}
}

// TestCompressedRoundTripAdversarial drives the wrapping-delta encoder with
// sequences varints hate: random 64-bit values, alternating extremes, and
// descending codes. Every one must round-trip exactly.
func TestCompressedRoundTripAdversarial(t *testing.T) {
	pool := newPool(t, 8)
	rng := rand.New(rand.NewSource(2))
	cases := map[string][]Rec{}

	random := make([]Rec, 500)
	for i := range random {
		random[i] = Rec{Code: pbicode.Code(rng.Uint64() | 1), Aux: rng.Uint64()}
	}
	cases["random64"] = random

	extremes := make([]Rec, 200)
	for i := range extremes {
		if i%2 == 0 {
			extremes[i] = Rec{Code: 1, Aux: 0}
		} else {
			extremes[i] = Rec{Code: pbicode.Code(^uint64(0)), Aux: ^uint64(0)}
		}
	}
	cases["extremes"] = extremes

	desc := make([]Rec, 300)
	c := ^uint64(0)
	for i := range desc {
		desc[i] = Rec{Code: pbicode.Code(c), Aux: uint64(300 - i)}
		c -= uint64(rng.Intn(1 << 40))
	}
	cases["descending"] = desc

	for name, recs := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, pool, name, true, recs) })
	}
}

// TestCompressedTailResume closes and reopens appenders mid-page so the
// compressed tail is resumed by replaying its deltas, including across
// many one-record Append calls (the RelationSink pattern).
func TestCompressedTailResume(t *testing.T) {
	pool := newPool(t, 8)
	r := New(pool, "resume")
	r.SetCompress(true)
	var want []Rec
	c := uint64(0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		c += uint64(rng.Intn(1<<20) + 1)
		rec := Rec{Code: pbicode.Code(c), Aux: rng.Uint64()}
		want = append(want, rec)
		// One appender per record: every append resumes the tail.
		if err := r.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed appends diverge (%d vs %d records)", len(got), len(want))
	}
}

// TestMixedFormatRelation flips the compress flag mid-life: the relation
// ends up with fixed pages followed by compressed pages (and back), and
// scans must stitch them together seamlessly.
func TestMixedFormatRelation(t *testing.T) {
	pool := newPool(t, 8)
	r := New(pool, "mixed")
	var want []Rec
	c := uint64(0)
	rng := rand.New(rand.NewSource(4))
	for phase := 0; phase < 4; phase++ {
		r.SetCompress(phase%2 == 1)
		batch := make([]Rec, 137)
		for i := range batch {
			c += uint64(rng.Intn(100) + 1)
			batch[i] = Rec{Code: pbicode.Code(c), Aux: uint64(len(want) + i)}
		}
		if err := r.Append(batch...); err != nil {
			t.Fatal(err)
		}
		want = append(want, batch...)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed-format scan diverges (%d vs %d records)", len(got), len(want))
	}
	li, err := r.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if li.FixedPages == 0 || li.CompressedPages == 0 {
		t.Fatalf("expected both formats present, got %+v", li)
	}
}

func TestScannerReset(t *testing.T) {
	pool := newPool(t, 8)
	recs := make([]Rec, 300)
	for i := range recs {
		recs[i] = Rec{Code: pbicode.Code(2*i + 1), Aux: uint64(i)}
	}
	r := roundTrip(t, pool, "reset", false, recs)
	var s Scanner
	for pass := 0; pass < 3; pass++ {
		s.Reset(r)
		n := 0
		for s.Next() {
			if s.Rec() != recs[n] {
				t.Fatalf("pass %d record %d: got %+v", pass, n, s.Rec())
			}
			n++
		}
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		if n != len(recs) {
			t.Fatalf("pass %d: %d records", pass, n)
		}
	}
	// ResetPages over a sub-range.
	s.ResetPages(r, 1, 2)
	n := 0
	for s.Next() {
		n++
	}
	if per := PerPage(pool.PageSize()); n != per {
		t.Fatalf("ResetPages(1,2): %d records, want %d", n, per)
	}
}

func TestBatchScanPages(t *testing.T) {
	pool := newPool(t, 8)
	recs := make([]Rec, 500)
	c := uint64(0)
	for i := range recs {
		c += 3
		recs[i] = Rec{Code: pbicode.Code(c), Aux: uint64(i)}
	}
	for _, compress := range []bool{false, true} {
		name := "fixed"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			r := roundTrip(t, pool, "pages-"+name, compress, recs)
			// Striped scan over disjoint page ranges must cover every record
			// exactly once, in order within each stripe.
			pages := int(r.NumPages())
			var got []Rec
			var bs BatchScanner
			for lo := 0; lo < pages; lo += 2 {
				bs.ResetPages(r, lo, lo+2)
				for bs.Next() {
					codes, aux := bs.Codes(), bs.Aux()
					for i := range codes {
						got = append(got, Rec{Code: pbicode.Code(codes[i]), Aux: aux[i]})
					}
				}
				if err := bs.Err(); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(got, recs) {
				t.Fatalf("striped batch scan diverges (%d vs %d records)", len(got), len(recs))
			}
		})
	}
}

// FuzzCompressedPage round-trips fuzz-chosen record sequences through the
// compressed appender and both scanners.
func FuzzCompressedPage(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(100), uint64(7), uint8(9))
	f.Add(^uint64(0), ^uint64(0), uint64(1), uint64(0), uint8(50))
	f.Fuzz(func(t *testing.T, seed, auxSeed, stride, auxStride uint64, n uint8) {
		d := storage.NewMemDisk(256, storage.CostModel{})
		defer d.Close()
		pool := buffer.New(d, 8)
		recs := make([]Rec, int(n)+1)
		c, a := seed, auxSeed
		for i := range recs {
			// Code 0 is invalid by the pbicode contract (Appender span
			// tracking calls Start), so pin the low bit.
			recs[i] = Rec{Code: pbicode.Code(c | 1), Aux: a}
			c += stride
			a -= auxStride
		}
		r := New(pool, "fuzz")
		r.SetCompress(true)
		if err := r.Append(recs...); err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("fuzz round-trip diverges (%d vs %d records)", len(got), len(recs))
		}
	})
}
