package relation

import (
	"testing"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
)

// benchRelation builds a fully resident 100k-record relation in the given
// page format.
func benchRelation(b *testing.B, compress bool) *Relation {
	b.Helper()
	d := storage.NewMemDisk(4096, storage.CostModel{})
	b.Cleanup(func() { d.Close() })
	pool := buffer.New(d, 512)
	r := New(pool, "bench")
	r.SetCompress(compress)
	const n = 100_000
	recs := make([]Rec, n)
	for i := range recs {
		recs[i] = Rec{Code: pbicode.Code(i + 1), Aux: uint64(i)}
	}
	if err := r.Append(recs...); err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkScan measures the per-record scan cost on a fully resident
// relation — the hot path of every partition pass and merge join. The
// page-at-a-time decode keeps Next allocation-free after the first pass
// (the Scanner is Reset, not reallocated).
func BenchmarkScan(b *testing.B) {
	for _, compress := range []bool{false, true} {
		name := "fixed"
		if compress {
			name = "compressed"
		}
		b.Run(name, func(b *testing.B) {
			r := benchRelation(b, compress)
			var s Scanner
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(r)
				var sum uint64
				for s.Next() {
					sum += s.Rec().Aux
				}
				if s.Err() != nil {
					b.Fatal(s.Err())
				}
				if sum == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}

// BenchmarkBatchScan is the slab counterpart of BenchmarkScan: whole pages
// decoded into []uint64 columns, summed in a tight loop.
func BenchmarkBatchScan(b *testing.B) {
	for _, compress := range []bool{false, true} {
		name := "fixed"
		if compress {
			name = "compressed"
		}
		b.Run(name, func(b *testing.B) {
			r := benchRelation(b, compress)
			var s BatchScanner
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset(r)
				var sum uint64
				for s.Next() {
					for _, a := range s.Aux() {
						sum += a
					}
				}
				if s.Err() != nil {
					b.Fatal(s.Err())
				}
				if sum == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}

// TestScanAllocFree asserts the resettable scanners stay allocation-free
// across passes — the fix for per-call Scanner churn inside join inner
// loops (blockEquiJoin rescans the probe side once per block).
func TestScanAllocFree(t *testing.T) {
	d := storage.NewMemDisk(4096, storage.CostModel{})
	defer d.Close()
	pool := buffer.New(d, 64)
	r := New(pool, "allocs")
	recs := make([]Rec, 10_000)
	for i := range recs {
		recs[i] = Rec{Code: pbicode.Code(i + 1), Aux: uint64(i)}
	}
	if err := r.Append(recs...); err != nil {
		t.Fatal(err)
	}
	var s Scanner
	var bs BatchScanner
	var sum uint64
	// Warm up once so the decode buffers exist.
	s.Reset(r)
	for s.Next() {
		sum += s.Rec().Aux
	}
	bs.Reset(r)
	for bs.Next() {
		sum += uint64(len(bs.Codes()))
	}
	if got := testing.AllocsPerRun(10, func() {
		s.Reset(r)
		for s.Next() {
			sum += s.Rec().Aux
		}
	}); got != 0 {
		t.Fatalf("Scanner.Reset pass allocates %v per run, want 0", got)
	}
	if got := testing.AllocsPerRun(10, func() {
		bs.Reset(r)
		for bs.Next() {
			for _, a := range bs.Aux() {
				sum += a
			}
		}
	}); got != 0 {
		t.Fatalf("BatchScanner.Reset pass allocates %v per run, want 0", got)
	}
	if sum == 0 {
		t.Fatal("empty scans")
	}
}
