package relation

import (
	"testing"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
)

// BenchmarkScan measures the per-record scan cost on a fully resident
// relation — the hot path of every partition pass and merge join. The
// page-at-a-time decode keeps Next allocation-free.
func BenchmarkScan(b *testing.B) {
	d := storage.NewMemDisk(4096, storage.CostModel{})
	defer d.Close()
	pool := buffer.New(d, 512)
	r := New(pool, "bench")
	const n = 100_000
	recs := make([]Rec, n)
	for i := range recs {
		recs[i] = Rec{Code: pbicode.Code(i + 1), Aux: uint64(i)}
	}
	if err := r.Append(recs...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := r.Scan()
		var sum uint64
		for s.Next() {
			sum += s.Rec().Aux
		}
		s.Close()
		if s.Err() != nil {
			b.Fatal(s.Err())
		}
		if sum == 0 {
			b.Fatal("empty scan")
		}
	}
}
