package relation

import (
	"encoding/binary"
	"fmt"
)

// BatchScanner iterates a relation page-at-a-time, decoding each page's
// records into two reusable column slabs — codes and aux words as bare
// []uint64 — instead of a []Rec row buffer. Join kernels iterate the slabs
// in tight loops: no per-record method dispatch, one bounds check per
// slab, and the code column is laid out exactly as the batched pbicode
// kernels (FBatch and friends) want it.
//
// Like Scanner, it unpins each page immediately after decoding, so no pin
// is held between Next calls and cancellation is polled at page
// granularity through the pool's interrupt hook.
type BatchScanner struct {
	r       *Relation
	pageIdx int
	endPage int // exclusive page bound; scanEnd sentinel = live tail
	codes   []uint64
	aux     []uint64
	n       int
	err     error
}

// BatchScan returns a batch scanner positioned before the first page.
func (r *Relation) BatchScan() *BatchScanner {
	return &BatchScanner{r: r, endPage: scanEnd}
}

// BatchScanPages returns a batch scanner over the half-open page range
// [lo, hi), the slab analogue of ScanPages (parallel workers use it to
// stripe a shared input).
func (r *Relation) BatchScanPages(lo, hi int) *BatchScanner {
	if hi > len(r.pages) {
		hi = len(r.pages)
	}
	if lo < 0 {
		lo = 0
	}
	return &BatchScanner{r: r, pageIdx: lo, endPage: hi}
}

// Reset repositions the scanner at the start of r, keeping the slabs.
func (s *BatchScanner) Reset(r *Relation) {
	*s = BatchScanner{r: r, endPage: scanEnd, codes: s.codes, aux: s.aux}
}

// ResetPages repositions the scanner over [lo, hi) of r, keeping the
// slabs.
func (s *BatchScanner) ResetPages(r *Relation, lo, hi int) {
	if hi > len(r.pages) {
		hi = len(r.pages)
	}
	if lo < 0 {
		lo = 0
	}
	*s = BatchScanner{r: r, pageIdx: lo, endPage: hi, codes: s.codes, aux: s.aux}
}

// Next loads the next non-empty page into the slabs, reporting false at
// the end of the range or on error. After a true Next, Codes and Aux
// return the page's columns; their contents are valid until the following
// Next or Reset.
func (s *BatchScanner) Next() bool {
	if s.err != nil {
		return false
	}
	for {
		end := s.endPage
		if end == scanEnd {
			end = len(s.r.pages)
		}
		if s.pageIdx >= end {
			return false
		}
		if err := s.load(); err != nil {
			s.err = fmt.Errorf("relation %s: batch scan: %w", s.r.name, err)
			s.n = 0
			return false
		}
		s.pageIdx++
		if s.n > 0 {
			return true
		}
	}
}

// load fetches the current page, decodes it into the slabs, and unpins.
func (s *BatchScanner) load() error {
	f, err := s.r.pool.Fetch(s.r.pages[s.pageIdx])
	if err != nil {
		return err
	}
	p := f.Data
	n := pageCount(p)
	switch pageFormat(p) {
	case pageFixed:
		if n > s.r.perPage {
			n = s.r.perPage
		}
		s.grow(n)
		codes, aux := s.codes[:n], s.aux[:n]
		for i := 0; i < n; i++ {
			off := pageHeader + i*RecSize
			codes[i] = binary.LittleEndian.Uint64(p[off:])
			aux[i] = binary.LittleEndian.Uint64(p[off+8:])
		}
	case pageCompressed:
		s.grow(n)
		if err := s.decodeCompressed(p, n); err != nil {
			s.r.pool.Unpin(f, false)
			return err
		}
	default:
		s.r.pool.Unpin(f, false)
		return fmt.Errorf("page %d: unknown page format %d", s.r.pages[s.pageIdx], pageFormat(p))
	}
	s.r.pool.Unpin(f, false)
	s.n = n
	return nil
}

func (s *BatchScanner) grow(n int) {
	if cap(s.codes) < n {
		want := s.r.perPage
		if want < n {
			want = n
		}
		s.codes = make([]uint64, want)
		s.aux = make([]uint64, want)
	}
	s.codes = s.codes[:cap(s.codes)]
	s.aux = s.aux[:cap(s.aux)]
}

// decodeCompressed is the slab variant of the page decoder: one varint
// walk filling both columns.
func (s *BatchScanner) decodeCompressed(p []byte, n int) error {
	used := pageUsed(p)
	if pageHeader+used > len(p) {
		return fmt.Errorf("compressed page claims %d payload bytes of %d", used, len(p)-pageHeader)
	}
	data := p[pageHeader : pageHeader+used]
	codes, aux := s.codes[:n], s.aux[:n]
	off := 0
	var code, ax uint64
	for i := 0; i < n; i++ {
		u, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return fmt.Errorf("compressed page truncated at record %d/%d", i, n)
		}
		code += uint64(unzigzag(u))
		off += k
		u, k = binary.Uvarint(data[off:])
		if k <= 0 {
			return fmt.Errorf("compressed page truncated at record %d/%d", i, n)
		}
		ax += uint64(unzigzag(u))
		off += k
		codes[i] = code
		aux[i] = ax
	}
	return nil
}

// Codes returns the code column of the current page. Valid after a true
// Next, until the following Next or Reset.
func (s *BatchScanner) Codes() []uint64 { return s.codes[:s.n] }

// Aux returns the aux column of the current page, index-aligned with
// Codes.
func (s *BatchScanner) Aux() []uint64 { return s.aux[:s.n] }

// Err returns the first error encountered, if any.
func (s *BatchScanner) Err() error { return s.err }
