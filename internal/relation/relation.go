// Package relation implements heap files of fixed-width element records over
// the buffer pool: the unsorted input sets A and D of a containment join,
// the partition files produced by the partitioning algorithms, and the
// sorted runs of the external sort all live in relations.
//
// A record is 16 bytes: the element's PBiTree code plus an auxiliary word
// (the element's ordinal in its document, or — in rolled-up relations — the
// element's original code before rollup). A 4 KiB page holds 255 records,
// so the paper's 1 M-element sets occupy ~3900 pages against the 500-page
// buffer pool of the experiments.
package relation

import (
	"encoding/binary"
	"fmt"

	"github.com/pbitree/pbitree/internal/buffer"
	"github.com/pbitree/pbitree/internal/storage"
	"github.com/pbitree/pbitree/pbicode"
)

// Rec is one element record.
type Rec struct {
	Code pbicode.Code
	// Aux carries per-record payload: the element ordinal for base
	// relations, or the pre-rollup code for rolled-up relations.
	Aux uint64
}

// RecSize is the on-page size of a record in bytes (fixed-width pages).
const RecSize = 16

// pageHeader is the per-page header: bytes [0:2] hold the record count,
// byte [2] the page format tag, and bytes [4:6] the used payload size of
// compressed pages. Legacy pages wrote zeros beyond the count, which is
// why pageFixed must stay 0: every page written before compression landed
// reads back as fixed-width without rewriting.
const pageHeader = 8

// Page format tags, stored in the header's format byte. The format is
// per-page, not per-relation, so fixed and compressed pages coexist in one
// relation (and one database) freely.
const (
	pageFixed      = 0 // fixed-width 16-byte records
	pageCompressed = 1 // zigzag-varint delta-encoded records
)

const (
	// maxCompRec bounds one delta-encoded record: two zigzag varints of up
	// to 10 bytes each. A compressed page accepts appends while this much
	// room remains, so no record ever splits across pages.
	maxCompRec = 2 * binary.MaxVarintLen64
	// maxPageRecs caps records per page at what the uint16 count holds.
	// Only reachable on compressed pages (2-byte deltas on a 1 MiB page).
	maxPageRecs = 1<<16 - 1
)

// zigzag folds a signed delta into an unsigned varint-friendly form; small
// magnitudes of either sign encode short.
func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// PerPage returns the number of records that fit a page of the given size.
func PerPage(pageSize int) int { return (pageSize - pageHeader) / RecSize }

// PageFormatName classifies a raw page image by its header format byte:
// "fixed", "compressed", or "" for a byte no known layout uses. Offline
// tools (pbifsck) use it to tally formats without a Relation handle.
func PageFormatName(p []byte) string {
	if len(p) < pageHeader {
		return ""
	}
	switch p[2] {
	case pageFixed:
		return "fixed"
	case pageCompressed:
		return "compressed"
	default:
		return ""
	}
}

// Relation is an append-only heap file: an ordered list of pages, each
// packed with records. The page list is kept in memory (the paper's
// Minibase keeps it in directory pages; at one entry per 255 records the
// difference is negligible and excluded from I/O accounting, as is
// conventional).
type Relation struct {
	name    string
	pool    *buffer.Pool
	pages   []storage.PageID
	count   int64
	perPage int
	// minStart / maxEnd track the region span of all records ever
	// appended (zero value = none yet). The vertical partitioning join
	// uses them to cut below the data's common ancestor, which keeps
	// partitions balanced on skewed embeddings.
	minStart uint64
	maxEnd   uint64
	// compress selects the page format for future appends: delta-encoded
	// varint pages when set, fixed-width 16-byte records otherwise. The
	// flag never rewrites existing pages — each page carries its own
	// format tag — so flipping it mid-life just changes the tail onward.
	compress bool
}

// SetCompress selects the page format for subsequent appends: compressed
// (delta-encoded sorted codes) when on, fixed-width otherwise. Existing
// pages keep their format; scans handle both transparently.
func (r *Relation) SetCompress(on bool) { r.compress = on }

// Compressed reports whether the relation appends compressed pages.
// Partitioning and external sort propagate the flag from their inputs to
// the temporary relations they create.
func (r *Relation) Compressed() bool { return r.compress }

// Span returns the smallest region covering every record appended so far
// and whether the relation has any records. The bounds are maintained
// incrementally on append and start over after Free.
func (r *Relation) Span() (pbicode.Region, bool) {
	if r.count == 0 {
		return pbicode.Region{}, false
	}
	return pbicode.Region{Start: r.minStart, End: r.maxEnd}, true
}

// New returns an empty relation using pool for all its I/O.
func New(pool *buffer.Pool, name string) *Relation {
	return &Relation{name: name, pool: pool, perPage: PerPage(pool.PageSize())}
}

// Name returns the relation's diagnostic name.
func (r *Relation) Name() string { return r.name }

// Rename changes the relation's name (catalog identity).
func (r *Relation) Rename(name string) { r.name = name }

// NumRecords returns the number of records |R|.
func (r *Relation) NumRecords() int64 { return r.count }

// NumPages returns the number of pages ‖R‖.
func (r *Relation) NumPages() int64 { return int64(len(r.pages)) }

// Pool returns the buffer pool the relation performs I/O through.
func (r *Relation) Pool() *buffer.Pool { return r.pool }

// Free drops the relation's pages from the buffer pool without write-back:
// the relation is deleted, so dirty resident pages are dead data. The disk
// space itself is not reclaimed (temporary files are cheap; benchmark runs
// use a fresh disk).
func (r *Relation) Free() error {
	for _, id := range r.pages {
		if err := r.pool.Discard(id); err != nil {
			return err
		}
	}
	r.pages = nil
	r.count = 0
	return nil
}

func putRec(p []byte, i int, rec Rec) {
	off := pageHeader + i*RecSize
	binary.LittleEndian.PutUint64(p[off:], uint64(rec.Code))
	binary.LittleEndian.PutUint64(p[off+8:], rec.Aux)
}

func getRec(p []byte, i int) Rec {
	off := pageHeader + i*RecSize
	return Rec{
		Code: pbicode.Code(binary.LittleEndian.Uint64(p[off:])),
		Aux:  binary.LittleEndian.Uint64(p[off+8:]),
	}
}

func pageCount(p []byte) int       { return int(binary.LittleEndian.Uint16(p)) }
func setPageCount(p []byte, n int) { binary.LittleEndian.PutUint16(p, uint16(n)) }

func pageFormat(p []byte) int       { return int(p[2]) }
func setPageFormat(p []byte, f int) { p[2] = byte(f) }

// pageUsed is the payload byte count of a compressed page (bytes beyond
// the header holding encoded records). Meaningless on fixed pages.
func pageUsed(p []byte) int       { return int(binary.LittleEndian.Uint16(p[4:])) }
func setPageUsed(p []byte, n int) { binary.LittleEndian.PutUint16(p[4:], uint16(n)) }

// decodeCompressed decodes a compressed page's records into buf, which
// must hold pageCount(p) entries. Deltas are accumulated with wrapping
// arithmetic, so any uint64 sequence — sorted or adversarial — round-trips
// exactly (the encoder used the matching wrapping subtraction).
func decodeCompressed(p []byte, buf []Rec) error {
	n := pageCount(p)
	used := pageUsed(p)
	if pageHeader+used > len(p) {
		return fmt.Errorf("compressed page claims %d payload bytes of %d", used, len(p)-pageHeader)
	}
	data := p[pageHeader : pageHeader+used]
	off := 0
	var code, aux uint64
	for i := 0; i < n; i++ {
		u, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return fmt.Errorf("compressed page truncated at record %d/%d", i, n)
		}
		code += uint64(unzigzag(u))
		off += k
		u, k = binary.Uvarint(data[off:])
		if k <= 0 {
			return fmt.Errorf("compressed page truncated at record %d/%d", i, n)
		}
		aux += uint64(unzigzag(u))
		off += k
		buf[i] = Rec{Code: pbicode.Code(code), Aux: aux}
	}
	return nil
}

// Appender buffers appends into a pinned tail page, the textbook model of
// one output frame per stream. Close flushes and unpins the tail; exactly
// one Appender may be active per relation.
type Appender struct {
	r      *Relation
	frame  buffer.Frame
	n      int // records in the pinned page
	active bool
	// Compressed-page write state: absolute write offset into the page and
	// the running previous code/aux the next deltas are taken against.
	off      int
	prevCode uint64
	prevAux  uint64
}

// NewAppender returns an appender positioned at the relation's tail: a
// partially filled last page is resumed, otherwise a fresh page is
// allocated on the first Append.
func (r *Relation) NewAppender() *Appender { return &Appender{r: r} }

// Append adds one record.
func (a *Appender) Append(rec Rec) error {
	if !a.active {
		if err := a.open(); err != nil {
			return fmt.Errorf("relation %s: append: %w", a.r.name, err)
		}
	}
	if a.r.compress {
		// Wrapping deltas: exact for arbitrary uint64 sequences, shortest
		// for the sorted-code relations joins actually produce.
		var tmp [maxCompRec]byte
		k := binary.PutUvarint(tmp[:], zigzag(int64(uint64(rec.Code)-a.prevCode)))
		k += binary.PutUvarint(tmp[k:], zigzag(int64(rec.Aux-a.prevAux)))
		copy(a.frame.Data[a.off:], tmp[:k])
		a.off += k
		a.prevCode, a.prevAux = uint64(rec.Code), rec.Aux
		a.n++
		setPageCount(a.frame.Data, a.n)
		setPageUsed(a.frame.Data, a.off-pageHeader)
		if a.off+maxCompRec > len(a.frame.Data) || a.n == maxPageRecs {
			a.r.pool.Unpin(a.frame, true)
			a.active = false
		}
	} else {
		putRec(a.frame.Data, a.n, rec)
		a.n++
		setPageCount(a.frame.Data, a.n)
		if a.n == a.r.perPage {
			a.r.pool.Unpin(a.frame, true)
			a.active = false
		}
	}
	if s := rec.Code.Start(); a.r.count == 0 || s < a.r.minStart {
		a.r.minStart = s
	}
	if e := rec.Code.End(); a.r.count == 0 || e > a.r.maxEnd {
		a.r.maxEnd = e
	}
	a.r.count++
	return nil
}

// open pins the page the next record goes to: the partial tail page when
// one exists and matches the append format, a freshly allocated page
// otherwise. A compressed tail is resumed by re-walking its deltas to
// recover the running previous values; a format-mismatched tail (the
// relation's compress flag flipped mid-life) is left as-is and a fresh
// page started.
func (a *Appender) open() error {
	if n := len(a.r.pages); n > 0 {
		f, err := a.r.pool.Fetch(a.r.pages[n-1])
		if err != nil {
			return err
		}
		if a.r.compress {
			if pageFormat(f.Data) == pageCompressed {
				c := pageCount(f.Data)
				off := pageHeader + pageUsed(f.Data)
				if off+maxCompRec <= len(f.Data) && c < maxPageRecs {
					prevC, prevA, err := walkCompressed(f.Data, c)
					if err != nil {
						a.r.pool.Unpin(f, false)
						return err
					}
					a.frame, a.n, a.active = f, c, true
					a.off, a.prevCode, a.prevAux = off, prevC, prevA
					return nil
				}
			}
		} else if pageFormat(f.Data) == pageFixed {
			if c := pageCount(f.Data); c < a.r.perPage {
				a.frame, a.n, a.active = f, c, true
				return nil
			}
		}
		a.r.pool.Unpin(f, false)
	}
	f, err := a.r.pool.NewPage()
	if err != nil {
		return err
	}
	a.frame, a.n, a.active = f, 0, true
	a.r.pages = append(a.r.pages, f.ID)
	if a.r.compress {
		setPageFormat(f.Data, pageCompressed)
		a.off, a.prevCode, a.prevAux = pageHeader, 0, 0
	}
	return nil
}

// walkCompressed replays a compressed page's deltas and returns the last
// record's code and aux — the values the next appended delta is relative
// to.
func walkCompressed(p []byte, n int) (code, aux uint64, err error) {
	used := pageUsed(p)
	if pageHeader+used > len(p) {
		return 0, 0, fmt.Errorf("compressed page claims %d payload bytes of %d", used, len(p)-pageHeader)
	}
	data := p[pageHeader : pageHeader+used]
	off := 0
	for i := 0; i < n; i++ {
		u, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return 0, 0, fmt.Errorf("compressed page truncated at record %d/%d", i, n)
		}
		code += uint64(unzigzag(u))
		off += k
		u, k = binary.Uvarint(data[off:])
		if k <= 0 {
			return 0, 0, fmt.Errorf("compressed page truncated at record %d/%d", i, n)
		}
		aux += uint64(unzigzag(u))
		off += k
	}
	return code, aux, nil
}

// Close unpins the partial tail page, if any. The appender must not be used
// afterwards.
func (a *Appender) Close() error {
	if a.active {
		a.r.pool.Unpin(a.frame, true)
		a.active = false
	}
	return nil
}

// Append is a convenience for bulk-loading a relation from a slice.
func (r *Relation) Append(recs ...Rec) error {
	a := r.NewAppender()
	for _, rec := range recs {
		if err := a.Append(rec); err != nil {
			a.Close()
			return err
		}
	}
	return a.Close()
}

// Pages returns the relation's page list, in storage order (catalog
// persistence).
func (r *Relation) Pages() []storage.PageID {
	return append([]storage.PageID(nil), r.pages...)
}

// Attach reconstructs a relation from a persisted catalog entry: the page
// list plus the cached statistics. The pages must exist on the pool's disk
// and hold valid heap pages.
func Attach(pool *buffer.Pool, name string, pages []storage.PageID, count int64, span pbicode.Region) *Relation {
	return &Relation{
		name:     name,
		pool:     pool,
		pages:    append([]storage.PageID(nil), pages...),
		count:    count,
		perPage:  PerPage(pool.PageSize()),
		minStart: span.Start,
		maxEnd:   span.End,
	}
}

// FromCodes bulk-loads codes into a new relation, Aux = ordinal.
func FromCodes(pool *buffer.Pool, name string, codes []pbicode.Code) (*Relation, error) {
	r := New(pool, name)
	a := r.NewAppender()
	for i, c := range codes {
		if err := a.Append(Rec{Code: c, Aux: uint64(i)}); err != nil {
			a.Close()
			return nil, err
		}
	}
	if err := a.Close(); err != nil {
		return nil, err
	}
	return r, nil
}

// WithPool returns a read view of the relation bound to another buffer
// pool: a shallow copy sharing the page list and statistics but performing
// its I/O through pool. Parallel workers use it to scan a shared input
// through their private pools; the view must not be appended to or freed
// while the original is live (the page list is shared).
func (r *Relation) WithPool(pool *buffer.Pool) *Relation {
	v := *r
	v.pool = pool
	return &v
}

// Scanner iterates a relation's records in storage order. On entering a
// page it decodes the whole page into a reused record buffer and unpins
// immediately, so Next is a bounds check and a slice read — no per-record
// pool traffic, no pin held between calls. The buffer snapshots the page
// as of the fetch; relations are append-only and never scanned while the
// same page is being appended to, so the snapshot is exact.
type Scanner struct {
	r       *Relation
	pageIdx int
	recIdx  int
	endPage int // exclusive page bound; scanEnd sentinel = live tail
	buf     []Rec
	n       int // records decoded from the current page
	loaded  bool
	rec     Rec
	err     error
}

// scanEnd marks a scanner bounded by the relation's live page count rather
// than a fixed range.
const scanEnd = -1

// Scan returns a scanner positioned before the first record.
func (r *Relation) Scan() *Scanner { return &Scanner{r: r, endPage: scanEnd} }

// ScanPages returns a scanner over the half-open page range [lo, hi) of
// the relation, in storage order. Parallel sort-run generation uses it to
// hand each worker a disjoint chunk of the input. hi is clamped to the
// current page count.
func (r *Relation) ScanPages(lo, hi int) *Scanner {
	if hi > len(r.pages) {
		hi = len(r.pages)
	}
	if lo < 0 {
		lo = 0
	}
	return &Scanner{r: r, pageIdx: lo, endPage: hi}
}

// Pos identifies a record position within a relation, as reported by
// Scanner.Pos. The zero Pos is the start of the relation.
type Pos struct {
	page int
	slot int
}

// ScanFrom returns a scanner positioned at p, so that the next Next
// returns the record at p (or the following ones if p's page has been
// exhausted). Positions must come from a Scanner over the same relation.
// Merge joins that re-read descendant segments (MPMGJN) use this.
func (r *Relation) ScanFrom(p Pos) *Scanner {
	return &Scanner{r: r, pageIdx: p.page, recIdx: p.slot, endPage: scanEnd}
}

// Pos returns the position of the next record Next would return. Calling
// it before any Next yields the start position; after Next returned a
// record, Pos is the position immediately after that record.
func (s *Scanner) Pos() Pos { return Pos{page: s.pageIdx, slot: s.recIdx} }

// Next advances to the next record, reporting false at the end or on
// error. The fast path is small enough to inline: a bounds compare and a
// slice read against the current page's decoded records.
func (s *Scanner) Next() bool {
	if s.recIdx < s.n {
		s.rec = s.buf[s.recIdx]
		s.recIdx++
		return true
	}
	return s.advance()
}

// advance loads pages until one yields a record at the scan position, the
// end of the range is reached, or an error occurs.
func (s *Scanner) advance() bool {
	if s.err != nil {
		return false
	}
	for {
		if s.loaded {
			s.loaded = false
			s.pageIdx++
			s.recIdx = 0
		}
		end := s.endPage
		if end == scanEnd {
			end = len(s.r.pages)
		}
		if s.pageIdx >= end {
			return false
		}
		if err := s.load(); err != nil {
			s.err = fmt.Errorf("relation %s: scan: %w", s.r.name, err)
			s.n = 0
			return false
		}
		if s.recIdx < s.n {
			s.rec = s.buf[s.recIdx]
			s.recIdx++
			return true
		}
	}
}

// load fetches the current page, decodes every record into the reused
// buffer, and unpins before returning. Both page formats decode into the
// same buffer; compressed pages can carry more records than perPage, so
// the buffer grows to the page's count when needed.
func (s *Scanner) load() error {
	f, err := s.r.pool.Fetch(s.r.pages[s.pageIdx])
	if err != nil {
		return err
	}
	n := pageCount(f.Data)
	p := f.Data
	switch pageFormat(p) {
	case pageFixed:
		if n > s.r.perPage {
			n = s.r.perPage
		}
		if cap(s.buf) < n {
			s.buf = make([]Rec, s.r.perPage)
		}
		buf := s.buf[:n]
		for i := range buf {
			off := pageHeader + i*RecSize
			buf[i] = Rec{
				Code: pbicode.Code(binary.LittleEndian.Uint64(p[off:])),
				Aux:  binary.LittleEndian.Uint64(p[off+8:]),
			}
		}
	case pageCompressed:
		if cap(s.buf) < n {
			s.buf = make([]Rec, n)
		}
		if err := decodeCompressed(p, s.buf[:n]); err != nil {
			s.r.pool.Unpin(f, false)
			return err
		}
	default:
		s.r.pool.Unpin(f, false)
		return fmt.Errorf("page %d: unknown page format %d", s.r.pages[s.pageIdx], pageFormat(p))
	}
	s.buf = s.buf[:cap(s.buf)]
	s.r.pool.Unpin(f, false)
	s.n, s.loaded = n, true
	return nil
}

// Reset repositions the scanner at the start of r, reusing the decode
// buffer. Join inner loops that rescan a relation per block use it to
// avoid allocating a fresh Scanner (and buffer) per pass.
func (s *Scanner) Reset(r *Relation) {
	*s = Scanner{r: r, endPage: scanEnd, buf: s.buf}
}

// ResetPages repositions the scanner over the half-open page range
// [lo, hi) of r, reusing the decode buffer (the resettable form of
// ScanPages).
func (s *Scanner) ResetPages(r *Relation, lo, hi int) {
	if hi > len(r.pages) {
		hi = len(r.pages)
	}
	if lo < 0 {
		lo = 0
	}
	*s = Scanner{r: r, pageIdx: lo, endPage: hi, buf: s.buf}
}

// Rec returns the current record. Valid after a true Next.
func (s *Scanner) Rec() Rec { return s.rec }

// Err returns the first error encountered, if any.
func (s *Scanner) Err() error { return s.err }

// Close releases the scanner's resources. The scanner holds no pin between
// Next calls, so this is now a no-op kept for callers that abandon a scan
// early (the historical contract required it).
func (s *Scanner) Close() {
	s.loaded = false
	s.n = 0
}

// LayoutInfo summarizes a relation's on-page layout: how many pages use
// each format and how the compressed footprint compares to the fixed-width
// layout of the same records (pbistat -layout).
type LayoutInfo struct {
	Pages           int64 // total pages
	FixedPages      int64 // fixed-width pages
	CompressedPages int64 // delta-compressed pages
	Records         int64 // records counted from page headers
	// PayloadBytes is the record payload actually stored: count*16 on
	// fixed pages, the encoded byte count on compressed pages.
	PayloadBytes int64
	// FixedEquivPages is how many pages the same records would occupy in
	// the fixed-width layout — the denominator of the scan-page savings.
	FixedEquivPages int64
}

// Layout scans the relation's page headers and returns the layout summary.
// It fetches every page through the pool, so it costs a full scan's I/O.
func (r *Relation) Layout() (LayoutInfo, error) {
	var li LayoutInfo
	li.Pages = int64(len(r.pages))
	for _, id := range r.pages {
		f, err := r.pool.Fetch(id)
		if err != nil {
			return li, fmt.Errorf("relation %s: layout: %w", r.name, err)
		}
		n := pageCount(f.Data)
		switch pageFormat(f.Data) {
		case pageCompressed:
			li.CompressedPages++
			li.PayloadBytes += int64(pageUsed(f.Data))
		default:
			li.FixedPages++
			if n > r.perPage {
				n = r.perPage
			}
			li.PayloadBytes += int64(n * RecSize)
		}
		li.Records += int64(n)
		r.pool.Unpin(f, false)
	}
	if r.perPage > 0 {
		li.FixedEquivPages = (li.Records + int64(r.perPage) - 1) / int64(r.perPage)
	}
	return li, nil
}

// ReadAll materializes the whole relation as a slice (test and in-memory
// join helper). The caller is responsible for it fitting in memory.
func (r *Relation) ReadAll() ([]Rec, error) {
	out := make([]Rec, 0, r.count)
	s := r.Scan()
	defer s.Close()
	for s.Next() {
		out = append(out, s.Rec())
	}
	return out, s.Err()
}
